#include "compress/decompress.h"

namespace spire {

Epoch Decompressor::EventEpoch(const Event& event) {
  switch (event.type) {
    case EventType::kEndLocation:
    case EventType::kEndContainment:
      return event.end;
    default:
      return event.start;
  }
}

void Decompressor::Push(const Event& event, EventStream* out) {
  Epoch epoch = EventEpoch(event);
  if (buffered_epoch_ != kNeverEpoch && epoch != buffered_epoch_) {
    FlushEpoch(out);
  }
  buffered_epoch_ = epoch;
  buffered_.push_back(event);
}

void Decompressor::Finish(EventStream* out) {
  if (!buffered_.empty()) FlushEpoch(out);
  buffered_epoch_ = kNeverEpoch;
}

EventStream Decompressor::DecompressAll(const EventStream& level2) {
  Decompressor decompressor;
  EventStream out;
  for (const Event& event : level2) decompressor.Push(event, &out);
  decompressor.Finish(&out);
  return out;
}

void Decompressor::FlushEpoch(EventStream* out) {
  dirty_.clear();
  closed_this_epoch_.clear();
  closed_order_.clear();
  closed_at_.clear();
  vanishing_.clear();
  for (const Event& event : buffered_) {
    if (event.type == EventType::kMissing) vanishing_.insert(event.object);
  }
  EventStream staged;
  // Phase 1: containment updates rebuild the hierarchy (Section V-C: "it
  // first processes all containment updates").
  for (const Event& event : buffered_) {
    if (IsContainmentEvent(event.type)) ApplyContainment(event, &staged);
  }
  // Phase 2: location updates, copied down to transitive contents.
  for (const Event& event : buffered_) {
    if (!IsContainmentEvent(event.type)) ApplyLocation(event, &staged);
  }
  // Phase 3: objects whose containment changed inherit their top-level
  // container's current location.
  Reconcile(buffered_epoch_, &staged);
  // Duplicate suppression (Section V-C): containment restructuring can close
  // an object's stay and reopen it at the same location within one epoch;
  // such End/Start pairs carry no information and are cancelled, splicing
  // the original interval back together.
  CancelChurn(&staged);
  out->insert(out->end(), staged.begin(), staged.end());
  buffered_.clear();
}

void Decompressor::CancelChurn(EventStream* staged) {
  for (const ChurnSplice& splice : CancelLocationChurn(staged, 0)) {
    // Splice: the stay never ended; restore its original start but keep the
    // provenance (derived vs explicit) of the reopened stay.
    auto open_it = open_.find(splice.object);
    if (open_it != open_.end() && open_it->second.location == splice.location) {
      open_it->second.start = splice.start;
    } else {
      open_[splice.object] =
          OpenLocation{splice.location, splice.start, /*derived=*/false};
    }
  }
}

void Decompressor::ApplyContainment(const Event& event, EventStream* out) {
  out->push_back(event);
  if (event.type == EventType::kStartContainment) {
    parent_[event.object] = event.container;
    children_[event.container].insert(event.object);
  } else {
    parent_.erase(event.object);
    auto it = children_.find(event.container);
    if (it != children_.end()) it->second.erase(event.object);
    // A *derived* stay was carried by this containment; once it ends, so
    // does the stay. If the object actually remains in place, the compressor
    // resumes it with an explicit StartLocation at this same epoch and
    // CancelChurn splices the interval back together. An explicit stay is
    // untouched — the compressor keeps emitting its changes directly.
    auto open_it = open_.find(event.object);
    if (open_it != open_.end() && open_it->second.derived) {
      const LocationId location = open_it->second.location;
      EmitEndIfOpen(event.object, event.end, out);
      // The closed stay was itself a chain root for derived stays further
      // down; they end with it, exactly as an explicit End would propagate.
      // (Without this, a grandchild whose middle link unlinks in the same
      // epoch as the root's departure is reachable by neither propagation.)
      // Stays that actually survive are re-derived by Reconcile and the
      // churn pass splices the interval back together. A vanishing object
      // closes alone, mirroring ApplyLocation's Missing rule.
      if (!vanishing_.contains(event.object)) {
        PropagateEnd(event.object, location, event.end, out);
      }
    }
  }
  dirty_.push_back(event.object);
}

void Decompressor::ApplyLocation(const Event& event, EventStream* out) {
  switch (event.type) {
    case EventType::kStartLocation: {
      auto it = open_.find(event.object);
      if (it != open_.end() && it->second.location == event.location) {
        // Duplicate: already known to be at this location. The explicit
        // message still reasserts that the compressor tracks this stay
        // explicitly (e.g. after a propagated move reached it first).
        it->second.derived = false;
        return;
      }
      EmitEndIfOpen(event.object, event.start, out);
      EmitStart(event.object, event.location, event.start, /*derived=*/false,
                out);
      PropagateStart(event.object, event.location, event.start, out);
      return;
    }
    case EventType::kEndLocation: {
      auto it = open_.find(event.object);
      if (it == open_.end() || it->second.location != event.location) {
        return;  // Duplicate close.
      }
      EmitEndIfOpen(event.object, event.end, out);
      // A close that is part of a vanish (a Missing for this object follows
      // in the same epoch) does not propagate — missing never does.
      if (!vanishing_.contains(event.object)) {
        PropagateEnd(event.object, event.location, event.end, out);
      }
      return;
    }
    case EventType::kMissing: {
      // A Missing whose location differs from where the stay closed this
      // epoch reveals a silent hop: the containment ended in phase 1, then
      // the former container moved and carried the object one last step
      // (level 1 shows the zero-length visit). Replay that step so the
      // vanish closes from the right place.
      if (!open_.contains(event.object) && located_.contains(event.object)) {
        auto closed_it = closed_at_.find(event.object);
        if (closed_it != closed_at_.end() &&
            closed_it->second != event.location) {
          EmitStart(event.object, event.location, event.start,
                    /*derived=*/true, out);
        }
      }
      // Keep the output well-formed: a reconstructed open location event
      // (propagated from a container) must not enclose a Missing singleton.
      EmitEndIfOpen(event.object, event.start, out);
      // A missing object no longer follows its container; propagation skips
      // it until an explicit StartLocation marks the resighting.
      missing_.insert(event.object);
      out->push_back(event);
      return;
    }
    default:
      return;
  }
}

void Decompressor::EmitStart(ObjectId object, LocationId location, Epoch epoch,
                             bool derived, EventStream* out) {
  open_[object] = OpenLocation{location, epoch, derived};
  missing_.erase(object);
  located_.insert(object);
  out->push_back(Event::StartLocation(object, location, epoch));
}

void Decompressor::EmitEndIfOpen(ObjectId object, Epoch epoch,
                                 EventStream* out) {
  auto it = open_.find(object);
  if (it == open_.end()) return;
  out->push_back(Event::EndLocation(object, it->second.location,
                                    it->second.start, epoch));
  closed_at_[object] = it->second.location;
  open_.erase(it);
  closed_this_epoch_.insert(object);
  closed_order_.push_back(object);
}

void Decompressor::PropagateStart(ObjectId parent, LocationId location,
                                  Epoch epoch, EventStream* out) {
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  for (ObjectId child : it->second) {
    // A missing child (and everything inside it) stays missing until an
    // explicit resighting; it does not follow its container's moves.
    if (missing_.contains(child)) continue;
    auto open_it = open_.find(child);
    // An explicit stay answers only to its own messages: the compressor
    // emits every transition of an explicitly tracked child itself, so
    // propagation must not second-guess it.
    if (open_it != open_.end() && !open_it->second.derived) {
      PropagateStart(child, location, epoch, out);
      continue;
    }
    // A never-located child gains no stay from its container's move; its
    // first sighting always arrives as an explicit StartLocation.
    if (open_it == open_.end() && !located_.contains(child)) {
      PropagateStart(child, location, epoch, out);
      continue;
    }
    if (open_it == open_.end() || open_it->second.location != location) {
      EmitEndIfOpen(child, epoch, out);
      EmitStart(child, location, epoch, /*derived=*/true, out);
    }
    PropagateStart(child, location, epoch, out);
  }
}

void Decompressor::PropagateEnd(ObjectId parent, LocationId location,
                                Epoch epoch, EventStream* out) {
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  for (ObjectId child : it->second) {
    if (missing_.contains(child)) continue;
    auto open_it = open_.find(child);
    // Only derived stays follow the container out; an explicitly tracked
    // child's departure (or survival) arrives as its own message.
    if (open_it != open_.end() && open_it->second.derived &&
        open_it->second.location == location) {
      EmitEndIfOpen(child, epoch, out);
    }
    PropagateEnd(child, location, epoch, out);
  }
}

void Decompressor::Reconcile(Epoch epoch, EventStream* out) {
  auto reconcile_one = [&](ObjectId object) {
    auto parent_it = parent_.find(object);
    if (parent_it == parent_.end()) return;
    if (missing_.contains(object)) return;
    // Only objects with a live stay — open now, or closed this epoch — may
    // inherit the container's location. An object that was never located
    // gains no stay from a containment edge alone; level 1 shows none
    // either (first sightings are always explicit).
    if (!open_.contains(object) && !closed_this_epoch_.contains(object)) {
      return;
    }
    // Walk to the top-level container.
    ObjectId root = parent_it->second;
    for (auto it = parent_.find(root); it != parent_.end();
         it = parent_.find(root)) {
      root = it->second;
    }
    auto root_open = open_.find(root);
    if (root_open == open_.end()) return;  // Container location unknown.
    LocationId location = root_open->second.location;
    auto open_it = open_.find(object);
    // An explicit stay is authoritative: the compressor only suppresses a
    // location that matches the chain root's, so a surviving explicit stay
    // means the object's reported location disagrees with the derived one.
    if (open_it != open_.end() && !open_it->second.derived) return;
    if (open_it == open_.end() || open_it->second.location != location) {
      EmitEndIfOpen(object, epoch, out);
      EmitStart(object, location, epoch, /*derived=*/true, out);
      PropagateStart(object, location, epoch, out);
    }
  };
  // Objects whose containment changed inherit the (possibly new) chain
  // root's location.
  for (ObjectId object : dirty_) reconcile_one(object);
  // So does a contained object whose stay closed this epoch without the
  // containment changing: the compressor's end-of-epoch handover closes an
  // explicit stay exactly when the chain root shows the same location, so
  // the stay re-derives in place and duplicate suppression splices the
  // interval back together. Genuine departures don't re-derive — they come
  // with a Missing mark, a replacement Start, or a closed root stay.
  for (ObjectId object : closed_order_) reconcile_one(object);
}

}  // namespace spire
