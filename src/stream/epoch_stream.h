// Epoch batching: grouping a raw reading stream into per-reader sets.
//
// The graph update procedure of Section III-B consumes one set of readings
// R_k per reader k per epoch and is incremental across readers. EpochBatch
// groups the (deduplicated) readings of one epoch by reader, preserving the
// reader arrival order so that update results are deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "stream/reading.h"

namespace spire {

/// The readings one reader produced in one epoch.
struct ReaderBatch {
  ReaderId reader = kNoReader;
  std::vector<ObjectId> tags;
};

/// All per-reader reading sets of one epoch.
struct EpochBatch {
  Epoch epoch = kNeverEpoch;
  std::vector<ReaderBatch> per_reader;

  /// Total number of readings across all readers.
  std::size_t TotalReadings() const {
    std::size_t n = 0;
    for (const ReaderBatch& batch : per_reader) n += batch.tags.size();
    return n;
  }
};

/// Groups one epoch's readings by reader, in first-appearance order of the
/// readers. Readings must all carry the same epoch (checked with assert in
/// debug builds); tags within a reader keep arrival order.
EpochBatch GroupByReader(const EpochReadings& readings, Epoch epoch);

}  // namespace spire
