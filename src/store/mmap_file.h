// Read-only memory mapping of a segment file, with a graceful signal to
// fall back to buffered reads where mapping is unavailable (non-POSIX
// builds, exotic filesystems, zero-length files).
//
// The sparkey reader model: map once at open for a constant startup cost,
// then serve every scan zero-copy out of the page cache. The mapping is
// immutable-by-contract — SPIRE segments are append-only and readers map
// only the validated prefix, so pages behind `size()` never change under
// the reader (a concurrent appender writes past them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace spire {

/// A read-only byte view of one file's first `size` bytes.
class MappedFile {
 public:
  /// Maps the first `size` bytes of `path`. Fails (NotSupported /
  /// NotFound) when the platform cannot map or the file cannot be opened —
  /// callers then use their buffered-read path.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path,
                                                  std::uint64_t size);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::uint64_t size() const { return size_; }

 private:
  MappedFile(void* map, std::uint64_t size);

  std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace spire
