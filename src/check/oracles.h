// The oracle battery of the differential checking harness.
//
// Every FuzzCase is expanded into a trace and judged by ten oracles:
//
//   (a) well_formed        both pipeline outputs pass ValidateWellFormed.
//   (b) level2_recovery    Decompress(level-2 output) is event-for-event
//                          equivalent to the same trace run at level 1
//                          (equality of per-epoch canonicalized streams —
//                          SPIRE's central losslessness claim, Section V).
//   (c) archive_roundtrip  writing the output through src/store and scanning
//                          it back reproduces the in-memory stream exactly.
//   (d) serde_roundtrip    SPEV encode/decode reproduces the stream exactly.
//   (e) determinism        regenerating and re-running the same case yields
//                          bit-identical output streams.
//   (f) incremental_equivalence
//                          the delta-driven inference scheduler
//                          (InferenceParams::incremental, DESIGN.md §10) is
//                          an optimization, not a semantics change: the same
//                          trace run with incremental off is bit-identical
//                          to the default run at both compression levels,
//                          and likewise under InferenceMode::kAlwaysComplete
//                          (a complete pass every epoch — the scheduler's
//                          hottest path).
//   (g) explain_consistency re-running level 2 with the explain channel
//                          attached changes nothing, yields exactly one
//                          provenance record per emitted event (matching
//                          fields, sane stage/posteriors), and every
//                          level-2 suppression names a covering containment
//                          that is actually open at that epoch.
//   (h) pattern_equivalence for every built-in CEP pattern (src/cep), the
//                          interval evaluator run directly on the level-2
//                          stream detects exactly the same (binding,
//                          completion) match set as the naive per-epoch
//                          evaluator over the decompressed level-1 view.
//   (i) distributed_equivalence
//                          on transfer cases (sim.transfer_sites >= 2), the
//                          distributed runtime (src/dist) over loopback
//                          connections at 1 and 2 nodes emits a stream
//                          bit-identical to the serial per-site reference,
//                          and that stream is well-formed with lossless
//                          level-2 recovery.
//   (j) query_equivalence  archiving the output and probing it at random
//                          and edge (object, epoch) points, the
//                          segment-direct SegmentLog (src/query) answers
//                          every query kind — LocationAt / ContainerAt /
//                          ContentsAt / ObjectsAt / TrajectoryOf /
//                          IsMissingAt — identically to the fully
//                          materialized EventLog, and the block-cache
//                          counters reconcile (hits + misses == lookups,
//                          decodes <= misses).
//
// A failure names the oracle and carries a human-readable diff/detail, so a
// minimized repro file is actionable on its own.
#pragma once

#include <optional>
#include <string>

#include "check/trace_gen.h"
#include "compress/event.h"
#include "spire/pipeline.h"

namespace spire {

/// One oracle violation.
struct OracleFailure {
  std::string oracle;  ///< Stable oracle name (see header comment).
  std::string detail;  ///< First divergence / validator message.
};

/// Sorts a stream into its canonical per-epoch order: events are grouped by
/// their emission epoch (V_e for End*, V_s otherwise — emission order is
/// already epoch-monotone) and ordered within the epoch by a fixed total
/// key. Two streams are state-equivalent per epoch iff their canonical
/// forms are equal, regardless of intra-epoch interleaving.
EventStream Canonicalized(const EventStream& stream);

/// Human-readable first divergence between two streams ("" when equal).
/// `a_name` / `b_name` label the sides in the report.
std::string DiffStreams(const EventStream& a, const EventStream& b,
                        const std::string& a_name, const std::string& b_name);

/// Feeds the whole trace through a fresh pipeline at `level` and Finish()es
/// it one epoch past the end.
EventStream RunPipelineOnTrace(const RecordedTrace& trace,
                               CompressionLevel level);

/// Same, with full control over the pipeline configuration.
EventStream RunPipelineOnTrace(const RecordedTrace& trace,
                               const PipelineOptions& options);

/// Checker configuration.
struct CheckOptions {
  /// Directory for archive round-trip scratch files; "" uses the system
  /// temporary directory. Created on demand.
  std::string scratch_dir;
};

/// Cost accounting for one Check() call.
struct CheckStats {
  /// Pipeline executions performed (2 levels + 4 incremental-equivalence
  /// re-runs + 2 determinism re-runs + 1 explain-consistency re-run; on
  /// transfer cases + 2 distributed references + 2 distributed runs).
  std::size_t traces_run = 0;
};

/// Runs the full oracle battery over fuzz cases. Single-threaded.
class DifferentialChecker {
 public:
  explicit DifferentialChecker(CheckOptions options = {});

  /// Expands the case and applies all ten oracles; std::nullopt means all
  /// green. `stats`, when non-null, accumulates pipeline-run counts.
  std::optional<OracleFailure> Check(const FuzzCase& fuzz_case,
                                     CheckStats* stats = nullptr) const;

  // Individual oracles (exposed for targeted tests). Each returns
  // std::nullopt when satisfied.
  static std::optional<OracleFailure> CheckWellFormed(const EventStream& level1,
                                                      const EventStream& level2);
  /// Re-runs the trace at level 2 with an ExplainLog attached and checks
  /// the log against `level2` (the same trace's output without the
  /// channel). `level2` must already be well-formed.
  static std::optional<OracleFailure> CheckExplainConsistency(
      const RecordedTrace& trace, const EventStream& level2);
  static std::optional<OracleFailure> CheckLevel2Recovery(
      const EventStream& level1, const EventStream& level2);
  /// Evaluates every library pattern both ways — interval NFA on the
  /// compressed `level2`, naive per-epoch NFA on the decompressed `level1`
  /// — and requires identical match sets. `registry` resolves the
  /// patterns' location names for this trace.
  static std::optional<OracleFailure> CheckPatternEquivalence(
      const ReaderRegistry& registry, const EventStream& level1,
      const EventStream& level2);
  /// Re-runs the trace with delta-driven inference disabled (and under
  /// InferenceMode::kAlwaysComplete both ways) and requires bit-identical
  /// output. `level1` / `level2` are the default (incremental) runs.
  static std::optional<OracleFailure> CheckIncrementalEquivalence(
      const RecordedTrace& trace, const EventStream& level1,
      const EventStream& level2, CheckStats* stats = nullptr);
  static std::optional<OracleFailure> CheckSerdeRoundTrip(
      const EventStream& stream, const std::string& label);
  /// Transfer cases only (no-op otherwise): re-expands the case's
  /// multi-site view and requires the distributed runtime (src/dist) to
  /// reproduce the serial per-site reference bit-for-bit over loopback
  /// connections at 1 and 2 nodes, with a well-formed, level-2-recoverable
  /// merged stream.
  static std::optional<OracleFailure> CheckDistributedEquivalence(
      const FuzzCase& fuzz_case, CheckStats* stats = nullptr);
  std::optional<OracleFailure> CheckArchiveRoundTrip(
      const EventStream& stream, const std::string& label) const;
  /// Archives `stream` to scratch and probes it at random and edge
  /// (object, epoch) points: segment-direct answers (query/segment_log,
  /// through a deliberately tiny block cache) must equal the materialized
  /// EventLog's for every query kind, and the cache counters must
  /// reconcile with the decode count.
  std::optional<OracleFailure> CheckQueryEquivalence(
      const EventStream& stream, const std::string& label) const;

 private:
  std::string ScratchPath(const std::string& label) const;

  CheckOptions options_;
};

}  // namespace spire
