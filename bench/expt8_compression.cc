// Expt 8 (Fig. 11(b) and 11(c)): compression ratios versus read rate.
//
// Fig. 11(b): location events only — SMURF vs level-1 vs level-2.
// Fig. 11(c): full output (location + containment) for level-1 and level-2,
// with the location-only ratios as a reference.
//
// Shape to check: SMURF comparable to level-1 at high read rates but much
// worse below ~0.7; level-2 beats level-1 above a crossover near 0.65 and
// loses below it; at high read rates level-2 reaches a few percent of the
// raw input size.
//
//   ./expt8_compression [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = PaperOutputConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 8: compression ratio vs read rate",
              "Fig. 11(b) location only; Fig. 11(c) with containment");

  TextTable location_table(
      {"read rate", "SMURF", "level-1 (loc)", "level-2 (loc)"});
  TextTable full_table({"read rate", "level-1 (all)", "level-2 (all)",
                        "level-1 (loc)", "level-2 (loc)"});

  for (double read_rate : {0.5, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0}) {
    SimConfig sim = base;
    sim.read_rate = read_rate;

    RunOptions level1;
    level1.sim = sim;
    level1.pipeline.level = CompressionLevel::kLevel1;
    RunMetrics m1 = RunSpireTrace(level1);

    RunOptions level2;
    level2.sim = sim;
    level2.pipeline.level = CompressionLevel::kLevel2;
    RunMetrics m2 = RunSpireTrace(level2);

    RunMetrics smurf = RunSmurfTrace(sim);

    location_table.AddRow({TextTable::Num(read_rate, 2),
                           TextTable::Num(smurf.location_ratio, 4),
                           TextTable::Num(m1.location_ratio, 4),
                           TextTable::Num(m2.location_ratio, 4)});
    full_table.AddRow({TextTable::Num(read_rate, 2),
                       TextTable::Num(m1.ratio, 4),
                       TextTable::Num(m2.ratio, 4),
                       TextTable::Num(m1.location_ratio, 4),
                       TextTable::Num(m2.location_ratio, 4)});
  }
  std::printf("Fig. 11(b): location events only\n");
  location_table.Print();
  std::printf("\nFig. 11(c): location + containment output\n");
  full_table.Print();
  return 0;
}
