// The physical world: ground truth for objects, locations, and containment.
//
// Section II defines the state of the world through two boolean functions,
// resides(o, l, t) and contained(o, o', l, t). PhysicalWorld is the mutable
// ground truth the simulator maintains; the evaluation library compares
// SPIRE's estimates against it. Location changes of a container cascade to
// its transitive contents (objects that are contained move together).
#pragma once

#include <cstddef>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/epc.h"
#include "common/status.h"
#include "common/types.h"

namespace spire {

/// Ground-truth state of one object.
struct ObjectState {
  ObjectId id = kNoObject;
  PackagingLevel level = PackagingLevel::kItem;
  /// Current location; kUnknownLocation while in transit or after a theft.
  LocationId location = kUnknownLocation;
  /// Direct container, or kNoObject.
  ObjectId parent = kNoObject;
  /// Direct contents.
  std::vector<ObjectId> children;
  /// True once the object improperly left the world (stolen / misplaced).
  bool stolen = false;
};

/// Mutable ground truth of the physical world.
class PhysicalWorld {
 public:
  PhysicalWorld() = default;

  /// Adds a new object at a location. Fails if the id already exists.
  Status AddObject(ObjectId id, LocationId location);

  /// Removes an object that exits through a proper channel. Contained
  /// objects are NOT removed implicitly; the caller removes the whole group.
  /// Severs the parent/children links of the removed object.
  Status RemoveObject(ObjectId id);

  /// Moves an object and, transitively, everything it contains.
  Status MoveObject(ObjectId id, LocationId location);

  /// Establishes containment child-in-parent. Both must be alive and at the
  /// same location (Section II requires co-residence for containment); the
  /// child must not already have a parent.
  Status SetContainment(ObjectId child, ObjectId parent);

  /// Ends the child's containment, if any.
  Status ClearContainment(ObjectId child);

  /// Marks an object stolen: detaches it from its parent, moves it (and its
  /// contents) to the unknown location, and flags it unreadable.
  Status Steal(ObjectId id);

  /// resides(o, l, now): true iff the object is alive and at `location`.
  bool Resides(ObjectId id, LocationId location) const;

  /// The ground-truth location, or kUnknownLocation for unknown/absent ids.
  LocationId LocationOf(ObjectId id) const;

  /// The ground-truth direct container, or kNoObject.
  ObjectId ParentOf(ObjectId id) const;

  /// The outermost container reachable from the object (itself if it has no
  /// parent), or kNoObject for unknown ids.
  ObjectId TopLevelContainerOf(ObjectId id) const;

  /// Lookup; nullptr if the object does not exist (or was removed).
  const ObjectState* Find(ObjectId id) const;

  bool Contains(ObjectId id) const { return Find(id) != nullptr; }

  /// All alive objects (unspecified order).
  const std::unordered_map<ObjectId, ObjectState>& objects() const {
    return objects_;
  }

  /// The objects currently at a location, in ascending id order. The empty
  /// set is returned for locations with no objects (including the unknown
  /// location, which is not indexed).
  const std::set<ObjectId>& ObjectsAt(LocationId location) const;

  std::size_t size() const { return objects_.size(); }

 private:
  ObjectState* FindMutable(ObjectId id);
  void MoveRecursive(ObjectState& state, LocationId location);
  void Reindex(ObjectId id, LocationId from, LocationId to);

  std::unordered_map<ObjectId, ObjectState> objects_;
  std::unordered_map<LocationId, std::set<ObjectId>> by_location_;
};

}  // namespace spire
