// Reader registry: the fixed RFID readers observing the physical world.
//
// SPIRE targets networks of static readers. Each reader is mounted at one
// pre-defined location; a reading therefore pins the object to the reader's
// location. Readers have a type (door / belt / shelf / ...) and a read
// period; belt readers are the "special readers" of Section III that scan
// one top-level container at a time and thereby confirm containment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace spire {

/// Functional class of a reader. The warehouse of Section VI-A deploys six
/// groups: entry door, receiving belt, shelves, packaging area, outgoing
/// belt, and exit door.
enum class ReaderType : std::uint8_t {
  kEntryDoor = 0,
  kReceivingBelt = 1,
  kShelf = 2,
  kPackaging = 3,
  kOutgoingBelt = 4,
  kExitDoor = 5,
  /// A mobile reader patrolling a route of locations (the paper's future-
  /// work extension): its current location is a function of the epoch.
  kMobile = 6,
};

/// Human-readable reader type name.
const char* ToString(ReaderType type);

/// True for the special readers that scan one top-level container at a time
/// and hence can confirm containment (receiving and outgoing belts).
inline bool IsSpecialReader(ReaderType type) {
  return type == ReaderType::kReceivingBelt || type == ReaderType::kOutgoingBelt;
}

/// True for exit readers: objects read there leave the physical world
/// through a proper channel and their graph nodes are retired.
inline bool IsExitReader(ReaderType type) {
  return type == ReaderType::kExitDoor;
}

/// Static description of one deployed reader.
struct ReaderInfo {
  ReaderId id = kNoReader;
  LocationId location = kUnknownLocation;
  ReaderType type = ReaderType::kShelf;
  /// The reader interrogates once every `period_epochs` epochs (>= 1).
  /// Non-shelf readers in the paper read every epoch; shelf readers read
  /// once per second up to once per minute.
  Epoch period_epochs = 1;
  std::string name;
};

/// Immutable-after-setup registry of readers and locations.
class ReaderRegistry {
 public:
  ReaderRegistry() = default;

  /// Registers a reader. Ids must be unique; periods must be >= 1.
  Status AddReader(const ReaderInfo& info);

  /// Registers a location name and returns its dense id.
  LocationId AddLocation(const std::string& name);

  /// Makes a (kMobile) reader patrol `route`, dwelling `dwell` epochs at
  /// each stop and cycling forever. The reader's static `location` becomes
  /// its home (used when the route is empty).
  Status SetPatrol(ReaderId id, std::vector<LocationId> route, Epoch dwell);

  /// Looks up a reader; fails with NotFound for unknown ids.
  Result<ReaderInfo> GetReader(ReaderId id) const;

  /// The reader's static (home) location, or kUnknownLocation if unknown.
  LocationId LocationOf(ReaderId id) const;

  /// The reader's location at `epoch`: the patrol stop for mobile readers,
  /// the static location otherwise.
  LocationId LocationAt(ReaderId id, Epoch epoch) const;

  /// The patrol route of a reader (empty for static readers).
  const std::vector<LocationId>& PatrolRouteOf(ReaderId id) const;
  Epoch PatrolDwellOf(ReaderId id) const;

  /// The registered location name, or "unknown"/"invalid".
  std::string LocationName(LocationId id) const;

  /// True if the reader interrogates in the given epoch.
  bool ReadsInEpoch(ReaderId id, Epoch epoch) const;

  /// Least common multiple of all reader periods (in epochs); the complete-
  /// inference cadence M of Section IV-D. Returns 1 for an empty registry.
  Epoch PeriodLcm() const;

  const std::vector<ReaderInfo>& readers() const { return readers_; }
  std::size_t num_locations() const { return location_names_.size(); }

 private:
  struct Patrol {
    std::vector<LocationId> route;
    Epoch dwell = 1;
  };

  std::vector<ReaderInfo> readers_;            // indexed by ReaderId
  std::vector<std::string> location_names_;    // indexed by LocationId
  std::map<ReaderId, Patrol> patrols_;
};

/// Per-location reading periods: entry l holds the period of the fastest
/// reader at location l (1 for uncovered locations). Used to convert epochs
/// into reading opportunities when weighing the silence of slow readers.
std::vector<Epoch> LocationPeriods(const ReaderRegistry& registry);

}  // namespace spire
