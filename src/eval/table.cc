#include "eval/table.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace spire {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(
          static_cast<int>(widths[c])) << row[c];
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace spire
