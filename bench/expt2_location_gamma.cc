// Expt 2 (Fig. 9(b)): location inference error versus gamma — the weight of
// colors propagated through containment edges against an object's own
// fading color — for several shelf-reader frequencies.
//
//   ./expt2_location_gamma [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 2: location inference vs gamma", "Fig. 9(b)");

  const std::vector<Epoch> shelf_periods{1, 10, 30, 60};
  const std::vector<double> gammas{0.0, 0.05, 0.15, 0.3, 0.45,
                                   0.6, 0.75, 0.9,  1.0};

  TextTable table([&] {
    std::vector<std::string> header{"gamma"};
    for (Epoch period : shelf_periods) {
      header.push_back("shelf 1/" + std::to_string(period) + "s");
    }
    return header;
  }());
  for (double gamma : gammas) {
    std::vector<std::string> row{TextTable::Num(gamma, 2)};
    for (Epoch period : shelf_periods) {
      RunOptions options;
      options.sim = base;
      options.sim.shelf_period = period;
      options.pipeline.inference.gamma = gamma;
      row.push_back(TextTable::Num(
          RunSpireTrace(options).accuracy.LocationErrorRate(), 4));
    }
    table.AddRow(row);
  }
  std::printf("location error rate vs gamma:\n");
  table.Print();
  return 0;
}
