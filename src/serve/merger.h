// EventMerger: epoch-barrier ordered merge of per-site event batches.
//
// Shards emit one SiteBatch per owned site per epoch, in ascending site
// order, through FIFO queues — so per queue, batches arrive ordered by
// (epoch, site). The merger forms the epoch barrier: it collects every
// site's batch for epoch e (blocking on the shard that is still working),
// concatenates them in ascending site order, and appends the result to the
// output stream before touching epoch e+1.
//
// The merged stream is therefore globally ordered by (epoch, site) with
// each site's intra-epoch emission order preserved — exactly the stream a
// serial per-site run produces, which is what makes `serve` byte-identical
// across shard counts (and to the single-threaded pipeline for a single
// site). Emission stays epoch-monotone, the property every downstream
// consumer (validator, decompressor, archive, src/check oracles) assumes.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "compress/event.h"
#include "serve/metrics.h"
#include "serve/queue.h"

namespace spire {
class ArchiveWriter;
}  // namespace spire

namespace spire::serve {

/// One site's output for one epoch (or its finish flush).
struct SiteBatch {
  Epoch epoch = kNeverEpoch;
  int site = -1;
  bool finish = false;
  EventStream events;
};

class EventMerger {
 public:
  /// `metrics` may be nullptr; otherwise it must outlive the merger.
  explicit EventMerger(MergerMetrics* metrics = nullptr)
      : metrics_(metrics) {}

  /// Drains the shard output queues to completion: collects per-epoch
  /// barriers until the finish round, appends merged events to `out`, and
  /// mirrors them to `archive` when non-null (the first archive error
  /// latches and stops mirroring, like the pipeline's sink). `batches_per
  /// _queue[q]` is the number of site batches queue q delivers per epoch
  /// (its shard's site count). Fails on a protocol violation — a queue
  /// closing before its finish batch or a batch for the wrong epoch.
  Status Drain(const std::vector<BoundedQueue<SiteBatch>*>& queues,
               const std::vector<std::size_t>& batches_per_queue,
               EventStream* out, ArchiveWriter* archive = nullptr);

  /// First archive-sink failure, or OK.
  const Status& archive_status() const { return archive_status_; }

 private:
  MergerMetrics* metrics_;
  Status archive_status_;
};

}  // namespace spire::serve
