#include "dist/coordinator.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/registry.h"
#include "serve/merger.h"
#include "serve/queue.h"

namespace spire::dist {

namespace {

obs::Counter* BarrierWaitsCounter() {
  if (!obs::Enabled()) return nullptr;
  static obs::Counter* counter =
      obs::Registry::Global().GetCounter("dist", "barrier_waits");
  return counter;
}

/// The coordinator's fleet-health instruments: per-node clock skew and
/// epoch lag, the fleet-wide worst lag, and the Barrier heartbeat gap.
/// Sized to the run's node count, so built per run rather than as a
/// static.
struct FleetInstruments {
  obs::Histogram* heartbeat_gap_us;
  obs::Gauge* max_epoch_lag;
  obs::Gauge* slowest_node;
  std::vector<obs::Gauge*> clock_skew_us;
  std::vector<obs::Gauge*> epoch_lag;
};

std::unique_ptr<FleetInstruments> MakeFleetInstruments(int num_nodes) {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  auto out = std::make_unique<FleetInstruments>();
  out->heartbeat_gap_us = registry.GetHistogram("fleet", "heartbeat_gap_us");
  out->max_epoch_lag = registry.GetGauge("fleet", "max_epoch_lag");
  out->slowest_node = registry.GetGauge("fleet", "slowest_node");
  for (int n = 0; n < num_nodes; ++n) {
    const std::string node = "node" + std::to_string(n);
    out->clock_skew_us.push_back(
        registry.GetGauge("fleet", node + "_clock_skew_us"));
    out->epoch_lag.push_back(registry.GetGauge("fleet", node + "_epoch_lag"));
  }
  return out;
}

}  // namespace

std::vector<int> SitesOfNode(int node, int num_sites, int num_nodes) {
  std::vector<int> sites;
  for (int site = node; site < num_sites; site += num_nodes) {
    sites.push_back(site);
  }
  return sites;
}

DistResult RunDistCoordinator(const serve::Workload& workload,
                              const std::vector<TransferHop>& hops,
                              const DistOptions& options,
                              const std::vector<Conn*>& conns) {
  DistResult result;
  const int num_nodes = static_cast<int>(conns.size());
  const int num_sites = static_cast<int>(workload.sites.size());
  if (num_nodes < 1 || num_nodes > num_sites) {
    result.status = Status::InvalidArgument(
        "node count must be in [1, site count]");
    return result;
  }
  const Epoch window =
      static_cast<Epoch>(options.inflight_epochs < 1 ? 1
                                                     : options.inflight_epochs);

  std::vector<std::vector<int>> sites_of(num_nodes);
  std::vector<std::size_t> batches_per_queue(num_nodes);
  for (int n = 0; n < num_nodes; ++n) {
    sites_of[n] = SitesOfNode(n, num_sites, num_nodes);
    batches_per_queue[n] = sites_of[n].size();
  }

  std::vector<std::unique_ptr<serve::BoundedQueue<serve::SiteBatch>>> queues;
  std::vector<serve::BoundedQueue<serve::SiteBatch>*> queue_ptrs;
  for (int n = 0; n < num_nodes; ++n) {
    queues.push_back(std::make_unique<serve::BoundedQueue<serve::SiteBatch>>(
        static_cast<std::size_t>(window) * batches_per_queue[n] + 1));
    queue_ptrs.push_back(queues.back().get());
  }

  // Hops in flight and barrier progress, shared by the reader threads and
  // the feeder.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Epoch> barriers(static_cast<std::size_t>(num_nodes), 0);
  std::vector<std::uint8_t> finished(static_cast<std::size_t>(num_nodes), 0);
  std::unordered_map<std::uint64_t, HandoffPayload> ready_handoffs;
  Status error;
  bool aborted = false;

  const std::unique_ptr<FleetInstruments> fleet =
      MakeFleetInstruments(num_nodes);
  if (options.stats_interval_epochs > 0) {
    result.node_stats.resize(static_cast<std::size_t>(num_nodes));
  }

  /// Latches the first error and unblocks every wait: queues (merger and
  /// blocked pushes), connections (blocked reads on both sides), and the
  /// shared condition variable.
  auto fail = [&](Status status) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!aborted) {
        error = std::move(status);
        aborted = true;
      }
    }
    cv.notify_all();
    for (auto& queue : queues) queue->Close();
    for (Conn* conn : conns) conn->Close();
  };

  auto reader = [&](int n) {
    for (;;) {
      Frame frame;
      bool eof = false;
      Status status = RecvFrame(conns[static_cast<std::size_t>(n)], &frame,
                                &eof);
      if (!status.ok()) {
        fail(std::move(status));
        break;
      }
      if (eof) {
        bool clean = false;
        {
          std::lock_guard<std::mutex> lock(mu);
          clean = finished[static_cast<std::size_t>(n)] != 0;
        }
        if (!clean) {
          fail(Status::Internal("node " + std::to_string(n) +
                                " disconnected before finish"));
        }
        break;
      }
      if (frame.type == FrameType::kHello) {
        Result<HelloPayload> hello = DecodeHello(frame.payload);
        if (!hello.ok()) {
          fail(hello.status());
          break;
        }
        if (hello.value().node_id != static_cast<std::uint32_t>(n)) {
          fail(Status::Internal("node identity mismatch"));
          break;
        }
        if (fleet != nullptr) {
          // One-way skew estimate: the node stamped its Hello at send, we
          // read our clock at receipt; the gap is send->receive delay plus
          // any clock divergence (~0 on one machine: CLOCK_MONOTONIC is
          // boot-global).
          fleet->clock_skew_us[static_cast<std::size_t>(n)]->Set(
              static_cast<std::int64_t>(SteadyNowMicros()) -
              static_cast<std::int64_t>(hello.value().steady_now_micros));
        }
        continue;
      }
      if (frame.type == FrameType::kSiteBatch) {
        Result<SiteBatchPayload> decoded = DecodeSiteBatch(frame.payload);
        if (!decoded.ok()) {
          fail(decoded.status());
          break;
        }
        serve::SiteBatch batch;
        batch.epoch = decoded.value().epoch;
        batch.site = static_cast<int>(decoded.value().site);
        batch.finish = decoded.value().finish;
        batch.events = std::move(decoded.value().events);
        if (!queues[static_cast<std::size_t>(n)]->Push(std::move(batch))) {
          break;  // queue closed: an abort is already in progress
        }
        continue;
      }
      if (frame.type == FrameType::kBarrier) {
        Result<BarrierPayload> barrier = DecodeBarrier(frame.payload);
        if (!barrier.ok()) {
          fail(barrier.status());
          break;
        }
        if (fleet != nullptr && barrier.value().steady_micros > 0) {
          const std::int64_t gap =
              static_cast<std::int64_t>(SteadyNowMicros()) -
              static_cast<std::int64_t>(barrier.value().steady_micros);
          fleet->heartbeat_gap_us->Record(
              gap > 0 ? static_cast<std::uint64_t>(gap) : 1);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          ++barriers[static_cast<std::size_t>(n)];
          if (barrier.value().finish) {
            finished[static_cast<std::size_t>(n)] = 1;
          }
          if (fleet != nullptr) {
            // Slow-node detection: how far each node trails the furthest
            // barrier. The max-lag gauge is a running high-water mark;
            // slowest_node names the node holding the current worst lag.
            Epoch max_barrier = 0;
            for (Epoch b : barriers) max_barrier = std::max(max_barrier, b);
            Epoch worst_lag = 0;
            int worst_node = 0;
            for (int i = 0; i < num_nodes; ++i) {
              const Epoch lag =
                  max_barrier - barriers[static_cast<std::size_t>(i)];
              fleet->epoch_lag[static_cast<std::size_t>(i)]->Set(lag);
              if (lag > worst_lag) {
                worst_lag = lag;
                worst_node = i;
              }
            }
            fleet->max_epoch_lag->SetMax(worst_lag);
            fleet->slowest_node->Set(worst_node);
          }
        }
        cv.notify_all();
        continue;
      }
      if (frame.type == FrameType::kHandoff) {
        Result<HandoffPayload> handoff = DecodeHandoff(frame.payload);
        if (!handoff.ok()) {
          fail(handoff.status());
          break;
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          ready_handoffs[handoff.value().hop] = std::move(handoff.value());
        }
        cv.notify_all();
        continue;
      }
      if (frame.type == FrameType::kStatsReport) {
        Result<StatsReportPayload> report = DecodeStatsReport(frame.payload);
        if (!report.ok()) {
          fail(report.status());
          break;
        }
        if (report.value().node_id != static_cast<std::uint32_t>(n)) {
          fail(Status::Internal("stats report node identity mismatch"));
          break;
        }
        // Reports are cumulative; keep only the latest per node. Each
        // reader writes its own slot, but take the lock anyway so the
        // final result read is ordered after every store.
        if (static_cast<std::size_t>(n) < result.node_stats.size()) {
          std::lock_guard<std::mutex> lock(mu);
          result.node_stats[static_cast<std::size_t>(n)] =
              std::move(report.value().snapshot);
        }
        continue;
      }
      fail(Status::Internal(std::string("unexpected ") + ToString(frame.type) +
                            " frame from node"));
      break;
    }
    // The merger treats a closed, drained queue as this node's stream end.
    queues[static_cast<std::size_t>(n)]->Close();
  };

  // Hop indexes by arrival epoch (schedule order). Hops arriving at or
  // after the horizon are never delivered: their departure is still
  // captured (the objects leave the origin site), matching the serial
  // reference. depart < arrive guarantees such hops also depart in range.
  std::map<Epoch, std::vector<std::size_t>> arrivals_at;
  std::map<Epoch, std::vector<std::size_t>> departures_at;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i].depart_epoch < workload.num_epochs) {
      departures_at[hops[i].depart_epoch].push_back(i);
      if (hops[i].arrive_epoch < workload.num_epochs) {
        arrivals_at[hops[i].arrive_epoch].push_back(i);
      }
    }
  }

  obs::Counter* barrier_waits = BarrierWaitsCounter();

  auto feeder = [&] {
    for (Epoch epoch = 0; epoch < workload.num_epochs; ++epoch) {
      for (int n = 0; n < num_nodes; ++n) {
        {
          std::unique_lock<std::mutex> lock(mu);
          if (!aborted &&
              epoch - barriers[static_cast<std::size_t>(n)] >= window) {
            if (barrier_waits != nullptr) barrier_waits->Add(1);
            cv.wait(lock, [&] {
              return aborted ||
                     epoch - barriers[static_cast<std::size_t>(n)] < window;
            });
          }
          if (aborted) return;
        }

        // Forward the handoffs arriving at this node this epoch, in
        // schedule order, ahead of the epoch's work on the same FIFO.
        auto arriving = arrivals_at.find(epoch);
        if (arriving != arrivals_at.end()) {
          for (std::size_t hop_index : arriving->second) {
            const TransferHop& hop = hops[hop_index];
            if (NodeOfSite(hop.to_site, num_nodes) != n) continue;
            HandoffPayload payload;
            {
              std::unique_lock<std::mutex> lock(mu);
              cv.wait(lock, [&] {
                return aborted || ready_handoffs.count(hop_index) != 0;
              });
              if (aborted) return;
              auto it = ready_handoffs.find(hop_index);
              payload = std::move(it->second);
              ready_handoffs.erase(it);
            }
            ++result.handoff_hops;
            result.handoff_objects += payload.objects.size();
            std::vector<std::uint8_t> bytes;
            EncodeHandoff(payload, &bytes);
            Status status = SendFrame(conns[static_cast<std::size_t>(n)],
                                      FrameType::kHandoff, bytes);
            if (!status.ok()) {
              fail(std::move(status));
              return;
            }
          }
        }

        EpochWorkPayload work;
        work.epoch = epoch;
        for (int site : sites_of[static_cast<std::size_t>(n)]) {
          const serve::SiteWorkload& sw =
              workload.sites[static_cast<std::size_t>(site)];
          if (epoch < static_cast<Epoch>(sw.epochs.size())) {
            work.site_readings.emplace_back(
                static_cast<std::uint32_t>(site),
                sw.epochs[static_cast<std::size_t>(epoch)]);
          }
        }
        auto departing = departures_at.find(epoch);
        if (departing != departures_at.end()) {
          for (std::size_t hop_index : departing->second) {
            const TransferHop& hop = hops[hop_index];
            if (NodeOfSite(hop.from_site, num_nodes) != n) continue;
            CaptureOrder order;
            order.hop = hop_index;
            order.from_site = static_cast<std::uint32_t>(hop.from_site);
            order.to_site = static_cast<std::uint32_t>(hop.to_site);
            order.arrive_epoch = hop.arrive_epoch;
            order.objects = hop.objects;
            work.captures.push_back(std::move(order));
          }
        }
        std::vector<std::uint8_t> bytes;
        EncodeEpochWork(work, &bytes);
        Status status = SendFrame(conns[static_cast<std::size_t>(n)],
                                  FrameType::kEpochWork, bytes);
        if (!status.ok()) {
          fail(std::move(status));
          return;
        }
      }
    }
    for (int n = 0; n < num_nodes; ++n) {
      EpochWorkPayload work;
      work.epoch = workload.num_epochs;
      work.finish = true;
      std::vector<std::uint8_t> bytes;
      EncodeEpochWork(work, &bytes);
      Status status = SendFrame(conns[static_cast<std::size_t>(n)],
                                FrameType::kEpochWork, bytes);
      if (!status.ok()) {
        fail(std::move(status));
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    // Send each node its site assignment before any reader can fail the
    // run, so nodes never wait on a Hello that was aborted away.
    HelloPayload hello;
    hello.node_id = static_cast<std::uint32_t>(n);
    for (int site : sites_of[static_cast<std::size_t>(n)]) {
      hello.sites.push_back(static_cast<std::uint32_t>(site));
    }
    hello.steady_now_micros = SteadyNowMicros();
    hello.stats_interval_epochs = options.stats_interval_epochs;
    std::vector<std::uint8_t> bytes;
    EncodeHello(hello, &bytes);
    Status status = SendFrame(conns[static_cast<std::size_t>(n)],
                              FrameType::kHello, bytes);
    if (!status.ok()) {
      fail(std::move(status));
      break;
    }
  }
  for (int n = 0; n < num_nodes; ++n) {
    threads.emplace_back(reader, n);
  }
  std::thread feed(feeder);

  serve::EventMerger merger;
  Status drain = merger.Drain(queue_ptrs, batches_per_queue, &result.events);
  if (!drain.ok()) fail(drain);

  feed.join();
  for (std::thread& thread : threads) thread.join();

  {
    std::lock_guard<std::mutex> lock(mu);
    result.status = aborted ? error : Status::OK();
  }
  if (!result.status.ok()) result.events.clear();
  return result;
}

}  // namespace spire::dist
