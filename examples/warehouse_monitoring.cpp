// Warehouse monitoring: live anomaly (theft/misplacement) alerts.
//
// Runs SPIRE over a warehouse trace with unexpected object removals and
// turns the interpreted event stream into alerts. A Missing event opens a
// *pending* alarm; if the object does not reappear within a grace period
// (it was merely in transit between locations), the alarm is confirmed. At
// the end the detector is scored against the injected thefts.
//
//   ./warehouse_monitoring [key=value ...]    e.g. theft_interval=200
#include <cstdio>
#include <map>

#include "common/config.h"
#include "eval/delay.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"

using namespace spire;

int main(int argc, char** argv) {
  auto args = Config::FromArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }

  SimConfig sim_config;
  sim_config.duration_epochs = 3600;
  sim_config.pallet_interval = 400;
  sim_config.items_per_case = 10;
  sim_config.mean_shelf_stay = 1200;
  sim_config.shelf_period = 30;
  sim_config.theft_interval = 300;  // One theft every 5 minutes.
  auto overridden = SimConfig::FromConfig(args.value(), sim_config);
  if (!overridden.ok()) {
    std::fprintf(stderr, "%s\n", overridden.status().ToString().c_str());
    return 1;
  }
  sim_config = overridden.value();
  // An object in transit legitimately resides nowhere; only a silence
  // longer than any transit plus a shelf period is alarming.
  const Epoch alarm_grace =
      sim_config.transit_time + 2 * sim_config.shelf_period;

  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  WarehouseSimulator& s = *sim.value();

  PipelineOptions options;
  options.inference.theta = 1.5;  // Faster decay: shorter detection delay.
  // Monitor the level-1 stream: level 2 suppresses contained objects'
  // location events, so their reappearances would be invisible here (a
  // level-2 consumer would watch the decompressed stream instead; see
  // examples/compression_roundtrip).
  options.level = CompressionLevel::kLevel1;
  SpirePipeline pipeline(&s.registry(), options);

  struct Pending {
    Epoch since = kNeverEpoch;
    LocationId from = kUnknownLocation;
  };
  EventStream output;
  std::map<ObjectId, Pending> pending;
  std::size_t alarms = 0, transits_filtered = 0, printed = 0;

  auto confirm_due = [&](Epoch now) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (now - it->second.since < alarm_grace) {
        ++it;
        continue;
      }
      ++alarms;
      if (++printed <= 10) {
        std::printf("[t=%5lld] ALERT %s missing from %s since t=%lld\n",
                    static_cast<long long>(now),
                    EpcToString(it->first).c_str(),
                    s.registry().LocationName(it->second.from).c_str(),
                    static_cast<long long>(it->second.since));
      }
      it = pending.erase(it);
    }
  };

  while (!s.Done()) {
    EpochReadings readings = s.Step();
    std::size_t before = output.size();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &output);
    for (std::size_t i = before; i < output.size(); ++i) {
      const Event& event = output[i];
      if (event.type == EventType::kMissing) {
        pending.try_emplace(event.object,
                            Pending{event.start, event.location});
      } else if (event.type == EventType::kStartLocation) {
        // Reappeared: it was a transit, not a theft.
        transits_filtered += pending.erase(event.object);
      }
    }
    confirm_due(s.current_epoch());
  }
  pipeline.Finish(s.current_epoch() + 1, &output);
  s.FinishTruth();

  DelayStats delay = EvaluateDetectionDelay(s.thefts(), output);
  std::printf("\n%zu alarms confirmed; %zu transient disappearances "
              "filtered by the %llds grace\n",
              alarms, transits_filtered,
              static_cast<long long>(alarm_grace));
  std::printf("injected thefts: %zu, detected in the event stream: %zu "
              "(%.0f%%), mean delay %.0f s, median %.0f s\n",
              delay.thefts, delay.detected, 100.0 * delay.DetectionRate(),
              delay.mean_delay, delay.median_delay);
  return 0;
}
