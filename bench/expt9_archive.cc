// Expt 9 (beyond the paper): the persistent block-compressed archive
// (src/store) versus the flat 26-byte SPEV record file, plus the format-v2
// codec shootout.
//
// Reports, for a level-2 warehouse trace:
//   - bytes per event and size relative to the flat encoding for both
//     block codecs (target: the varint archive at most half the flat
//     file);
//   - write and full-scan throughput for the flat file and both codecs;
//   - a 10%-of-epochs time-range scan: blocks decoded versus total blocks
//     (the block directory must skip a proportional share) and the scan's
//     event yield;
//   - the epoch-column decode shootout: ScanEpochColumn over
//     {varint, bitpack} x {buffered, mmap}. The bitpack codec skips the
//     leading columns structurally (one width byte per 128-value
//     miniblock) where varint must walk every byte, and the mmap path
//     decodes zero-copy with once-per-reader payload validation; together
//     they must beat the seed reader configuration (buffered varint) by
//     >= kEpochSpeedupFloor x — asserted hard, and written to
//     BENCH_archive.json for tools/bench_compare.py to track.
//
//   ./expt9_archive [full=true] [block_events=N] [key=value ...]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/wire.h"
#include "compress/serde.h"
#include "eval/table.h"
#include "sim/simulator.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"

using namespace spire;
using namespace spire::bench;

namespace {

/// Hard floor on bitpack/varint epoch-column scan rate (mmap transport).
constexpr double kEpochSpeedupFloor = 5.0;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs the pipeline over the trace and returns its output stream.
EventStream GenerateTrace(const SimConfig& config) {
  auto sim = WarehouseSimulator::Create(config);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream events;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &events);
  }
  pipeline.Finish(s.current_epoch() + 1, &events);
  return events;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// One archive written with a specific codec: size + write/scan rates.
struct CodecRun {
  std::string path;
  std::uint64_t bytes = 0;
  double write_s = 0.0;
  double scan_s = 0.0;
  std::size_t blocks = 0;
};

CodecRun WriteAndScan(const std::string& path, BlockCodec codec,
                      std::size_t block_events, const EventStream& events) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
  ArchiveOptions options;
  options.block_events = block_events;
  options.codec = codec;

  CodecRun run;
  run.path = path;
  auto t0 = std::chrono::steady_clock::now();
  auto writer = ArchiveWriter::Open(path, options);
  Check(writer.status(), "archive open");
  Check(writer.value()->Append(events), "archive append");
  Check(writer.value()->Close(), "archive close");
  run.write_s = Seconds(t0);
  run.bytes = writer.value()->segment_bytes();

  auto reader = ArchiveReader::Open(path);
  Check(reader.status(), "archive reader open");
  run.blocks = reader.value().num_blocks();
  t0 = std::chrono::steady_clock::now();
  auto scanned = reader.value().ScanAll();
  Check(scanned.status(), "archive scan");
  run.scan_s = Seconds(t0);
  if (scanned.value() != events) {
    std::fprintf(stderr, "%s round trip mismatch\n", ToString(codec));
    std::exit(1);
  }
  return run;
}

/// Best-of-`reps` ScanEpochColumn wall time; the decoded column must match
/// `expect` on every rep (a fast-but-wrong decode is not a result).
double BestEpochScanSeconds(const ArchiveReader& reader, int reps,
                            const std::vector<Epoch>& expect) {
  double best = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto epochs = reader.ScanEpochColumn();
    const double elapsed = Seconds(t0);
    Check(epochs.status(), "epoch-column scan");
    if (epochs.value() != expect) {
      std::fprintf(stderr, "epoch-column scan diverged from full decode\n");
      std::exit(1);
    }
    best = std::min(best, elapsed);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = PaperOutputConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();
  const std::size_t block_events = static_cast<std::size_t>(
      args.GetInt("block_events", 4096).value_or(4096));

  PrintHeader("Expt 9: persistent archive vs flat event file",
              "beyond the paper; store/ subsystem");

  const EventStream events = GenerateTrace(base);
  const double n = static_cast<double>(events.size());
  std::printf("trace: %zu events over %lld epochs\n\n", events.size(),
              static_cast<long long>(base.duration_epochs));

  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string flat_path = dir + "/expt9_flat.spev";
  const std::string varint_path = dir + "/expt9_varint.sparc";
  const std::string bitpack_path = dir + "/expt9_bitpack.sparc";
  std::error_code ec;
  std::filesystem::remove(flat_path, ec);

  // --- Flat SPEV file -------------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  Check(WriteEventFile(flat_path, events), "flat write");
  const double flat_write_s = Seconds(t0);
  const auto flat_bytes = std::filesystem::file_size(flat_path);

  t0 = std::chrono::steady_clock::now();
  auto flat_read = ReadEventFile(flat_path);
  Check(flat_read.status(), "flat read");
  const double flat_read_s = Seconds(t0);
  if (flat_read.value() != events) {
    std::fprintf(stderr, "flat round trip mismatch\n");
    return 1;
  }

  // --- Block-compressed archive, both codecs --------------------------------
  const CodecRun varint =
      WriteAndScan(varint_path, BlockCodec::kVarint, block_events, events);
  const CodecRun bitpack =
      WriteAndScan(bitpack_path, BlockCodec::kBitpack, block_events, events);

  TextTable table({"format", "bytes", "bytes/event", "vs flat", "write Mev/s",
                   "scan Mev/s"});
  table.AddRow({"flat SPEV", std::to_string(flat_bytes),
                TextTable::Num(static_cast<double>(flat_bytes) / n, 2), "1.00",
                TextTable::Num(n / flat_write_s / 1e6, 2),
                TextTable::Num(n / flat_read_s / 1e6, 2)});
  for (const CodecRun* run : {&varint, &bitpack}) {
    table.AddRow({run == &varint ? "archive varint" : "archive bitpack",
                  std::to_string(run->bytes),
                  TextTable::Num(static_cast<double>(run->bytes) / n, 2),
                  TextTable::Num(static_cast<double>(run->bytes) /
                                     static_cast<double>(flat_bytes),
                                 2),
                  TextTable::Num(n / run->write_s / 1e6, 2),
                  TextTable::Num(n / run->scan_s / 1e6, 2)});
  }
  table.Print();
  std::printf("archive: %zu blocks of <= %zu events; payload record = %zu "
              "flat bytes\n\n",
              varint.blocks, block_events, kEventWireBytes);

  // --- 10%-of-epochs range scan --------------------------------------------
  auto reader = ArchiveReader::Open(varint_path);
  Check(reader.status(), "archive reader open");
  Epoch lo_epoch = kInfiniteEpoch, hi_epoch = 0;
  for (const Event& event : events) {
    const Epoch primary = PrimaryEpoch(event);
    if (primary < lo_epoch) lo_epoch = primary;
    if (primary > hi_epoch) hi_epoch = primary;
  }
  const Epoch span = hi_epoch - lo_epoch;
  const Epoch lo = lo_epoch + span * 45 / 100;
  const Epoch hi = lo_epoch + span * 55 / 100;
  const std::size_t touched = reader.value().BlocksInRange(lo, hi);
  t0 = std::chrono::steady_clock::now();
  auto ranged = reader.value().ScanRange(lo, hi);
  Check(ranged.status(), "range scan");
  const double range_s = Seconds(t0);
  std::printf("range scan [%lld, %lld] (10%% of %lld epochs):\n",
              static_cast<long long>(lo), static_cast<long long>(hi),
              static_cast<long long>(span));
  std::printf("  blocks decoded: %zu of %zu (%.1f%%), events: %zu "
              "(%.1f%% of stream), %.2f ms\n\n",
              touched, reader.value().num_blocks(),
              100.0 * static_cast<double>(touched) /
                  static_cast<double>(reader.value().num_blocks()),
              ranged.value().size(), 100.0 * ranged.value().size() / n,
              range_s * 1e3);

  // --- Epoch-column decode shootout ----------------------------------------
  // Repetitions scale inversely with the trace so quick mode still measures
  // something (best-of over >= 8 scans, ~2M decoded epochs total per cell).
  const int reps = static_cast<int>(
      std::max<double>(8.0, 2e6 / std::max(n, 1.0)));
  std::vector<Epoch> expect;
  expect.reserve(events.size());
  for (const Event& event : events) expect.push_back(PrimaryEpoch(event));

  struct Cell {
    const char* codec;
    const char* transport;
    bool mapped = false;
    double best_s = 0.0;
  };
  std::vector<Cell> cells;
  for (const CodecRun* run : {&varint, &bitpack}) {
    for (bool use_mmap : {false, true}) {
      ReaderOptions reader_options;
      reader_options.use_mmap = use_mmap;
      auto r = ArchiveReader::Open(run->path, reader_options);
      Check(r.status(), "shootout reader open");
      Cell cell;
      cell.codec = run == &varint ? "varint" : "bitpack";
      cell.transport = use_mmap ? "mmap" : "buffered";
      cell.mapped = r.value().mapped();
      cell.best_s = BestEpochScanSeconds(r.value(), reps, expect);
      cells.push_back(cell);
    }
  }

  TextTable shootout({"codec", "transport", "mapped", "best ms",
                      "Mepochs/s"});
  for (const Cell& cell : cells) {
    shootout.AddRow({cell.codec, cell.transport, cell.mapped ? "yes" : "no",
                     TextTable::Num(cell.best_s * 1e3, 3),
                     TextTable::Num(n / cell.best_s / 1e6, 2)});
  }
  shootout.Print();

  // The gated ratio is new fast path vs the seed reader configuration:
  // before format v2 the reader was buffered and varint-only, so
  // cells[0] (varint/buffered) is the baseline and cells[3]
  // (bitpack/mmap) is what this subsystem buys. The same-transport ratio
  // (cells[3]/cells[1]) isolates the codec alone and is reported but not
  // floored — the shared zigzag/prefix pass bounds it tighter.
  const double baseline_rate = n / cells[0].best_s;
  const double varint_mmap_rate = n / cells[1].best_s;
  const double bitpack_mmap_rate = n / cells[3].best_s;
  const double speedup = bitpack_mmap_rate / baseline_rate;
  const double codec_speedup = bitpack_mmap_rate / varint_mmap_rate;
  std::printf("epoch-column speedup: %.2fx vs seed reader (buffered "
              "varint; floor %.0fx), %.2fx vs varint on mmap\n",
              speedup, kEpochSpeedupFloor, codec_speedup);
  if (speedup < kEpochSpeedupFloor) {
    std::fprintf(stderr,
                 "FAIL: bitpack/mmap epoch-column scan is %.2fx the "
                 "buffered-varint baseline, below the %.0fx floor\n",
                 speedup, kEpochSpeedupFloor);
    return 1;
  }

  BenchReport report("archive");
  report.Add("events", n);
  report.Add("flat_bytes", static_cast<double>(flat_bytes));
  report.Add("varint_bytes", static_cast<double>(varint.bytes));
  report.Add("bitpack_bytes", static_cast<double>(bitpack.bytes));
  report.Add("varint_buffered_epochs_per_sec", n / cells[0].best_s);
  report.Add("varint_mmap_epochs_per_sec", varint_mmap_rate);
  report.Add("bitpack_buffered_epochs_per_sec", n / cells[2].best_s);
  report.Add("bitpack_mmap_epochs_per_sec", bitpack_mmap_rate);
  report.Add("bitpack_epoch_speedup", speedup);
  report.Add("bitpack_epoch_codec_speedup", codec_speedup);
  report.Add("range_scan_seconds", range_s);
  Check(report.Write(), "report write");

  std::filesystem::remove(flat_path, ec);
  for (const std::string& path : {varint_path, bitpack_path}) {
    std::filesystem::remove(path, ec);
    std::filesystem::remove(IndexPathFor(path), ec);
  }
  return 0;
}
