#!/usr/bin/env bash
# Local CI: configure, build, and run the test suite in three
# configurations — plain, ASan+UBSan (SPIRE_SANITIZE=ON), and TSan
# (SPIRE_SANITIZE=thread, concurrency tests only: the serving layer's
# queue/merger/serve suites). Any warning is an error in every
# configuration (-Werror is always on). After ctest, the plain and
# sanitized configurations replay the spire_fuzz seed corpus
# (tools/fuzz_seeds.txt) through the differential oracle battery
# (DESIGN.md §7); an oracle violation fails the build and leaves the
# minimized repro under <build-dir>/fuzz-repros/ (its path is printed on
# stdout). The plain configuration then runs the observability smoke step
# (DESIGN.md §9): a fuzz-seed `spire_cli run` with tracing + explain on,
# artifact validation via `spire_cli obscheck`, byte-identity of
# instrumented vs uninstrumented output, and the expt11_obs overhead
# bench (single-process arms reported; the dist leg's traced-overhead
# ratio gated at 1.15x against BENCH_obs.json). A CEP smoke step
# (DESIGN.md §11) then cross-checks the pattern library's two evaluators
# over a fuzz-seed trace and an archive replay via `spire_cli detect`.
# An archive codec smoke (DESIGN.md §6) round-trips a trace through both
# block codecs (including the v1 -> v2 compaction path) over the mmap and
# buffered transports — in the plain AND the sanitized configuration.
# A segment-direct query smoke (DESIGN.md §13) archives a fuzz-seed trace
# and serves a generated mixed-kind workload through `spire_cli
# queryserve` on 2 threads with the materialized-baseline identity check
# on and the query cache counters re-validated by obscheck — in the plain
# AND the TSan configuration (the shared block cache and concurrent
# decode paths are exactly what TSan is for).
# A distributed-serving smoke (DESIGN.md §12) runs a truck-transfer seed
# on 2 loopback nodes with the serial-reference byte-identity check on,
# validates the dist wire counters via `spire_cli obscheck`, and re-runs
# the workload on forked node processes (spawn mode must match loopback
# bit for bit) with the full fleet observability stack attached: per-node
# StatsReport frames aggregated into a fleet statusz and per-node traces
# merged onto one timeline, both re-validated by obscheck (DESIGN.md §9).
# The TSan leg repeats the loopback half only — fork with running threads
# is out of bounds under the sanitizer.
#
#   tools/ci.sh            # all three configurations
#   tools/ci.sh plain      # plain only
#   tools/ci.sh sanitize   # ASan+UBSan only
#   tools/ci.sh tsan       # ThreadSanitizer only (serve/queue/merger tests)
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "=== [$name] fuzz (differential oracles) ==="
  "$dir/tools/spire_fuzz" --seeds tools/fuzz_seeds.txt --budget 30s \
    --out-dir "$dir/fuzz-repros"
}

# TSan watches the threaded code paths; the single-threaded suites add
# nothing but runtime, so only the serving-layer and obs-instrument tests
# run here.
run_tsan() {
  local dir="build-tsan"
  echo "=== [tsan] configure ==="
  cmake -B "$dir" -S . -DSPIRE_SANITIZE=thread
  echo "=== [tsan] build ==="
  cmake --build "$dir" -j "$jobs" \
    --target serve_test common_test obs_test dist_test query_test spire_cli
  echo "=== [tsan] test (concurrency suites) ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
    -R 'Serve|Queue|Merger|Log|Obs|Tracer|Dist|Cache'
  run_dist_smoke "$dir" loopback
  run_queryserve_smoke "$dir"
}

# Observability smoke: a fuzz-seed run with tracing and the explain channel
# on, the trace/metrics/explain artifacts re-validated by `spire_cli
# obscheck`, and a soft check that instruments-off vs instruments-on output
# is byte-identical (determinism with the obs layer in both states).
run_obs_smoke() {
  local dir="$1" tmp
  tmp="$(mktemp -d)"
  echo "=== [obs] smoke (run + statusz + obscheck) ==="
  "$dir/tools/spire_cli" run seed=7 out="$tmp/on.spev" \
    trace_out="$tmp/trace.json" explain_out="$tmp/run.spexp" \
    archive_out="$tmp/run.sparc"
  "$dir/tools/spire_cli" statusz seed=7 json=true > "$tmp/statusz.json"
  "$dir/tools/spire_cli" obscheck trace="$tmp/trace.json" \
    metrics="$tmp/statusz.json" explain="$tmp/run.spexp"
  "$dir/tools/spire_cli" serve sites=1 seed=7 shards=1 \
    out="$tmp/off.spev" > /dev/null
  if ! cmp -s "$tmp/on.spev" "$tmp/off.spev"; then
    echo "obs smoke: instrumented run diverged from uninstrumented run" >&2
    rm -rf "$tmp"
    exit 1
  fi
  echo "=== [obs] overhead bench (dist leg gated) ==="
  # The single-process arms stay soft — absolute wall-clock on shared CI
  # machines is too noisy. The dist leg's traced-over-disabled ratio is a
  # quotient of two interleaved same-machine runs, so it IS gated: the
  # fleet observability stack (per-epoch StatsReport frames + handoff
  # spans) must stay within 1.15x of the uninstrumented run. The binary
  # itself hard-fails if stats+tracing change the merged stream.
  SPIRE_BENCH_DIR="$tmp" "$dir/bench/expt11_obs" reps=3 | tail -n +4
  tools/bench_compare.py BENCH_obs.json "$tmp/BENCH_obs.json" \
    --hard --threshold 0.15
  rm -rf "$tmp"
}

# CEP detection smoke (DESIGN.md §11): the built-in pattern library over a
# fuzz-seed trace with both evaluators cross-checked (eval=check exits
# nonzero on any divergence or zero matches), the match explain channel
# re-validated by obscheck, and a registry-free pattern detected over an
# archive replay of the same seed.
run_cep_smoke() {
  local dir="$1" tmp
  tmp="$(mktemp -d)"
  echo "=== [cep] detect smoke (library + archive + explain) ==="
  "$dir/tools/spire_cli" detect patterns=library seed=33 eval=check \
    require_matches=true explain_out="$tmp/matches.spexp"
  "$dir/tools/spire_cli" obscheck explain="$tmp/matches.spexp"
  "$dir/tools/spire_cli" run seed=33 out="$tmp/run.spev" \
    archive_out="$tmp/run.sparc" > /dev/null
  "$dir/tools/spire_cli" detect 'pattern=Missing(x)' \
    archive="$tmp/run.sparc" eval=check require_matches=true
  rm -rf "$tmp"
}

# Archive codec smoke (DESIGN.md §6): a fuzz-seed trace archived with each
# codec (the v2 bitpack segment produced by compacting a v1 varint segment,
# so the upgrade path is exercised too), then scanned back over both
# transports. Every scan must reproduce the pipeline's event file
# byte-for-byte. Runs under the sanitized build as well, putting the
# word-at-a-time bitpack decode and the mmap zero-copy path in front of
# ASan/UBSan on every CI pass.
run_archive_smoke() {
  local dir="$1" tmp arc transport
  tmp="$(mktemp -d)"
  echo "=== [archive] codec smoke (varint + v1->v2 bitpack, mmap + buffered) ==="
  "$dir/tools/spire_cli" run seed=21 out="$tmp/run.spev" > /dev/null
  "$dir/tools/spire_cli" archive in="$tmp/run.spev" out="$tmp/varint.sparc" \
    codec=varint
  "$dir/tools/spire_cli" archive in="$tmp/run.spev" out="$tmp/v1.sparc" \
    format=1
  "$dir/tools/spire_cli" compact in="$tmp/v1.sparc" out="$tmp/bitpack.sparc"
  for arc in varint bitpack; do
    for transport in 1 0; do
      "$dir/tools/spire_cli" scan in="$tmp/$arc.sparc" mmap="$transport" \
        out="$tmp/scan.spev" > /dev/null
      if ! cmp -s "$tmp/run.spev" "$tmp/scan.spev"; then
        echo "archive smoke: $arc mmap=$transport scan diverged" >&2
        rm -rf "$tmp"
        exit 1
      fi
    done
  done
  rm -rf "$tmp"
}

# Segment-direct query smoke (DESIGN.md §13): a fuzz-seed trace archived
# with the bitpack codec and served by `spire_cli queryserve` — a
# generated mixed-kind workload on 2 threads through a shared block cache,
# two passes so the second is warm. check=1 answers every request through
# EventLog::FromArchive as well and exits nonzero on any divergence, and
# the binary itself fails if the cache counters don't reconcile
# (hits + misses == lookups, decodes <= misses); obscheck re-validates the
# exported query metrics.
run_queryserve_smoke() {
  local dir="$1" tmp
  tmp="$(mktemp -d)"
  echo "=== [query] queryserve smoke (segment-direct vs materialized) ==="
  "$dir/tools/spire_cli" run seed=21 out="$tmp/run.spev" > /dev/null
  "$dir/tools/spire_cli" archive in="$tmp/run.spev" out="$tmp/run.sparc" \
    codec=bitpack block=256
  "$dir/tools/spire_cli" queryserve in="$tmp/run.sparc" count=2000 seed=3 \
    threads=2 passes=2 cache_mb=4 check=1 stats_out="$tmp/query-metrics.json"
  "$dir/tools/spire_cli" obscheck metrics="$tmp/query-metrics.json"
  rm -rf "$tmp"
}

# Distributed serving smoke (DESIGN.md §12): a transfer-scenario seed on 2
# nodes. `check=1` replays the serial per-site reference and demands the
# distributed stream match it byte for byte (the CLI face of the
# distributed_equivalence oracle); the dist wire counters round-trip
# through obscheck. The optional second half re-runs the same workload
# with each node in a forked process over real socketpairs and compares
# the two output files — pass "loopback" as the second argument to skip
# it (TSan forbids fork once coordinator threads are up).
run_dist_smoke() {
  local dir="$1" spawn="${2:-spawn}" tmp
  tmp="$(mktemp -d)"
  echo "=== [dist] smoke (2-node loopback + obscheck) ==="
  "$dir/tools/spire_cli" dist seed=7 nodes=2 mode=loopback check=1 \
    out="$tmp/loopback.spev" stats_out="$tmp/dist-metrics.json"
  "$dir/tools/spire_cli" obscheck metrics="$tmp/dist-metrics.json"
  if [ "$spawn" = "spawn" ]; then
    echo "=== [dist] smoke (forked nodes + fleet statusz + merged trace) ==="
    # The fleet observability stack rides along: per-node registries
    # aggregated into stats_out, per-node traces merged into trace_out —
    # and the output must STILL match the uninstrumented loopback run.
    "$dir/tools/spire_cli" dist seed=7 nodes=2 mode=spawn check=1 \
      out="$tmp/spawn.spev" stats_every=8 \
      stats_out="$tmp/fleet-metrics.json" trace_out="$tmp/fleet-trace.json"
    "$dir/tools/spire_cli" obscheck metrics="$tmp/fleet-metrics.json" \
      trace="$tmp/fleet-trace.json" require=epoch,hop
    if ! cmp -s "$tmp/loopback.spev" "$tmp/spawn.spev"; then
      echo "dist smoke: spawn run diverged from loopback run" >&2
      rm -rf "$tmp"
      exit 1
    fi
  fi
  rm -rf "$tmp"
}

# Incremental-inference bench: a quick expt12 run (byte-identity of
# delta-driven vs full recomputation is checked inside the binary, so a
# divergence fails hard) compared against the committed
# BENCH_incremental.json baseline. The comparison itself is soft — same
# noisy-wall-clock policy as the expt11 check above.
run_bench_compare() {
  local dir="$1" tmp
  tmp="$(mktemp -d)"
  echo "=== [bench] expt12 incremental (byte-identity + soft compare) ==="
  # full=true matches the scale of the committed baseline (quick mode runs
  # a smaller graph where the stationary speedup is structurally lower).
  SPIRE_BENCH_DIR="$tmp" "$dir/bench/expt12_incremental" full=true | tail -n +4
  if [ -f BENCH_incremental.json ]; then
    tools/bench_compare.py BENCH_incremental.json \
      "$tmp/BENCH_incremental.json" || true
  fi
  echo "=== [bench] expt13 cep (match identity + soft compare) ==="
  # Match-set identity and the 2x interval-vs-naive floor are asserted
  # inside the binary; the wall-clock comparison stays soft.
  SPIRE_BENCH_DIR="$tmp" "$dir/bench/expt13_cep" | tail -n +4
  if [ -f BENCH_cep.json ]; then
    tools/bench_compare.py BENCH_cep.json "$tmp/BENCH_cep.json" || true
  fi
  echo "=== [bench] expt9 archive (5x epoch-scan floor + soft compare) ==="
  # The 5x bitpack/mmap-vs-buffered-varint epoch-scan floor is asserted
  # inside the binary; the wall-clock comparison stays soft.
  SPIRE_BENCH_DIR="$tmp" "$dir/bench/expt9_archive" | tail -n +4
  if [ -f BENCH_archive.json ]; then
    tools/bench_compare.py BENCH_archive.json "$tmp/BENCH_archive.json" || true
  fi
  echo "=== [bench] expt15 query (5x warm-serving floor + soft compare) ==="
  # Answer identity against the materialized EventLog, cache-counter
  # reconciliation, and the 5x warm-cache-vs-FromArchive-per-request floor
  # are asserted inside the binary; the wall-clock comparison stays soft.
  SPIRE_BENCH_DIR="$tmp" "$dir/bench/expt15_query" | tail -n +4
  if [ -f BENCH_query.json ]; then
    tools/bench_compare.py BENCH_query.json "$tmp/BENCH_query.json" || true
  fi
  echo "=== [bench] expt14 dist (byte-identity + soft compare) ==="
  # Byte-identity of every node count (loopback and forked processes)
  # against the serial reference is asserted inside the binary; the
  # throughput/speedup comparison stays soft — the scaling columns only
  # mean anything with more than one hardware thread.
  SPIRE_BENCH_DIR="$tmp" "$dir/bench/expt14_dist" | tail -n +4
  if [ -f BENCH_dist.json ]; then
    tools/bench_compare.py BENCH_dist.json "$tmp/BENCH_dist.json" || true
  fi
  rm -rf "$tmp"
}

case "$mode" in
  plain)
    run_config plain build
    run_obs_smoke build
    run_cep_smoke build
    run_archive_smoke build
    run_queryserve_smoke build
    run_dist_smoke build
    run_bench_compare build
    ;;
  sanitize)
    run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON
    run_archive_smoke build-sanitize
    ;;
  tsan) run_tsan ;;
  all)
    run_config plain build
    run_obs_smoke build
    run_cep_smoke build
    run_archive_smoke build
    run_queryserve_smoke build
    run_dist_smoke build
    run_bench_compare build
    run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON
    run_archive_smoke build-sanitize
    run_tsan
    ;;
  *)
    echo "usage: tools/ci.sh [plain|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

echo "=== CI OK ($mode) ==="
