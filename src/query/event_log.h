// An indexed, queriable view over a SPIRE event stream.
//
// The paper positions the compressed output as "directly queriable using
// recently developed event processors"; EventLog is that consumer: it folds
// a well-formed level-1 stream (or decompresses a level-2 stream first)
// into per-object location and containment timelines plus inverse indexes,
// and answers the natural tracking queries — where was object X at time T,
// what contained it, what did container Y hold, what resided at location L,
// which objects were reported missing.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "compress/event.h"

namespace spire {

class ArchiveReader;

/// One closed (or still-open) stay of an object at a location or inside a
/// container. `end` is exclusive; kInfiniteEpoch while open.
struct Stay {
  Epoch start = kNeverEpoch;
  Epoch end = kInfiniteEpoch;
  LocationId location = kUnknownLocation;  ///< Location stays.
  ObjectId container = kNoObject;          ///< Containment stays.

  bool Covers(Epoch epoch) const { return start <= epoch && epoch < end; }
  bool operator==(const Stay&) const = default;
};

/// A Missing report: the object was absent from every known location from
/// `since` until `until` (the next sighting; kInfiniteEpoch if never).
struct MissingReport {
  ObjectId object = kNoObject;
  LocationId missing_from = kUnknownLocation;
  Epoch since = kNeverEpoch;
  Epoch until = kInfiniteEpoch;

  bool operator==(const MissingReport&) const = default;
};

/// Immutable query index over one event stream.
class EventLog {
 public:
  /// Builds the index. The stream must be well-formed (open trailing events
  /// are fine); pass `decompress` for a level-2 stream.
  static Result<EventLog> Build(const EventStream& stream,
                                bool decompress = false);

  /// Builds the index from an archive (src/store), restricted to events
  /// whose primary timestamps lie in [lo, hi] — only intersecting blocks
  /// are decoded. End messages whose Start predates the range are repaired
  /// with a synthetic Start carrying the reconstructed interval, so the
  /// restricted stream stays well-formed. With `decompress`, suppressed
  /// child locations are reconstructed from in-range containment only.
  static Result<EventLog> FromArchive(const ArchiveReader& archive, Epoch lo,
                                      Epoch hi, bool decompress = false);

  // --- Point queries ------------------------------------------------------

  /// resides(object, ?, epoch): the reported location, or kUnknownLocation.
  LocationId LocationAt(ObjectId object, Epoch epoch) const;

  /// contained(object, ?, epoch): the reported direct container, or
  /// kNoObject.
  ObjectId ContainerAt(ObjectId object, Epoch epoch) const;

  /// The outermost reported container at `epoch` (the object itself when
  /// uncontained; kNoObject for unknown objects).
  ObjectId TopLevelContainerAt(ObjectId object, Epoch epoch) const;

  /// True when a Missing report covers the epoch.
  bool IsMissingAt(ObjectId object, Epoch epoch) const;

  // --- Set queries --------------------------------------------------------

  /// Objects reported directly inside `container` at `epoch` (ascending;
  /// `transitive` descends the containment tree).
  std::vector<ObjectId> ContentsAt(ObjectId container, Epoch epoch,
                                   bool transitive = false) const;

  /// Objects reported at `location` at `epoch`, ascending.
  std::vector<ObjectId> ObjectsAt(LocationId location, Epoch epoch) const;

  // --- Timeline queries ---------------------------------------------------

  /// The object's full location history, in time order.
  const std::vector<Stay>& TrajectoryOf(ObjectId object) const;

  /// The object's containment history, in time order.
  const std::vector<Stay>& ContainmentsOf(ObjectId object) const;

  /// Every Missing report in the stream, in (object, since) order.
  const std::vector<MissingReport>& MissingReports() const {
    return missing_;
  }

  // --- Candidate indexes (pattern binding enumeration, src/cep) -----------

  /// Every object with any stay or report, ascending.
  std::vector<ObjectId> Objects() const;

  /// Objects with at least one stay at `location`, ascending.
  std::vector<ObjectId> ObjectsEverAt(LocationId location) const;

  /// Distinct (child, container) pairs over all containment stays,
  /// ascending.
  std::vector<std::pair<ObjectId, ObjectId>> ContainmentPairs() const;

  /// Distinct ever-containers of `object` / ever-contents of `container`.
  std::vector<ObjectId> EverContainersOf(ObjectId object) const;
  std::vector<ObjectId> EverContentsOf(ObjectId container) const;

  // --- Metadata -----------------------------------------------------------

  std::size_t num_objects() const { return locations_.size(); }
  Epoch first_epoch() const { return first_epoch_; }
  Epoch last_epoch() const { return last_epoch_; }

 private:
  EventLog() = default;

  std::map<ObjectId, std::vector<Stay>> locations_;
  std::map<ObjectId, std::vector<Stay>> containments_;
  /// Inverse indexes: stays by location / by container, sorted by start.
  std::map<LocationId, std::vector<std::pair<Stay, ObjectId>>> by_location_;
  std::map<ObjectId, std::vector<std::pair<Stay, ObjectId>>> by_container_;
  std::vector<MissingReport> missing_;
  Epoch first_epoch_ = kNeverEpoch;
  Epoch last_epoch_ = kNeverEpoch;
};

}  // namespace spire
