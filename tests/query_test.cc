// Tests for the query engine (src/query) — point, set, and timeline
// queries over level-1 and level-2 streams via the materialized EventLog,
// the segment-direct SegmentLog and its LRU block cache, plus an
// end-to-end check against the simulator's ground truth.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/epc.h"
#include "query/block_cache.h"
#include "query/event_log.h"
#include "query/segment_log.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kItem2 = Obj(PackagingLevel::kItem, 2);
const ObjectId kCase = Obj(PackagingLevel::kCase, 3);
const ObjectId kPallet = Obj(PackagingLevel::kPallet, 4);

/// A small hand-built level-1 stream:
///   item: loc 4 [10,20), loc 7 [25,50), missing at 20..25 and after 50
///   case: loc 4 [10,60)
///   containment: item in case [12,40), case in pallet [15,30)
EventStream SampleStream() {
  return {
      Event::StartLocation(kItem, 4, 10),
      Event::StartLocation(kCase, 4, 10),
      Event::StartContainment(kItem, kCase, 12),
      Event::StartContainment(kCase, kPallet, 15),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
      Event::StartLocation(kItem, 7, 25),
      Event::EndContainment(kCase, kPallet, 15, 30),
      Event::EndContainment(kItem, kCase, 12, 40),
      Event::EndLocation(kItem, 7, 25, 50),
      Event::Missing(kItem, 7, 50),
      Event::EndLocation(kCase, 4, 10, 60),
  };
}

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto built = EventLog::Build(SampleStream());
    ASSERT_TRUE(built.ok());
    log_ = std::make_unique<EventLog>(std::move(built).value());
  }
  std::unique_ptr<EventLog> log_;
};

TEST_F(EventLogTest, LocationAt) {
  EXPECT_EQ(log_->LocationAt(kItem, 9), kUnknownLocation);
  EXPECT_EQ(log_->LocationAt(kItem, 10), 4);
  EXPECT_EQ(log_->LocationAt(kItem, 19), 4);
  EXPECT_EQ(log_->LocationAt(kItem, 20), kUnknownLocation);  // End exclusive.
  EXPECT_EQ(log_->LocationAt(kItem, 30), 7);
  EXPECT_EQ(log_->LocationAt(kItem, 55), kUnknownLocation);
  EXPECT_EQ(log_->LocationAt(Obj(PackagingLevel::kItem, 99), 30),
            kUnknownLocation);
}

TEST_F(EventLogTest, ContainerAt) {
  EXPECT_EQ(log_->ContainerAt(kItem, 11), kNoObject);
  EXPECT_EQ(log_->ContainerAt(kItem, 12), kCase);
  EXPECT_EQ(log_->ContainerAt(kItem, 39), kCase);
  EXPECT_EQ(log_->ContainerAt(kItem, 40), kNoObject);
}

TEST_F(EventLogTest, TopLevelContainerWalksTheChain) {
  EXPECT_EQ(log_->TopLevelContainerAt(kItem, 20), kPallet);  // item<case<pallet
  EXPECT_EQ(log_->TopLevelContainerAt(kItem, 35), kCase);    // pallet ended
  EXPECT_EQ(log_->TopLevelContainerAt(kItem, 45), kItem);    // uncontained
  EXPECT_EQ(log_->TopLevelContainerAt(Obj(PackagingLevel::kItem, 99), 20),
            kNoObject);
}

TEST_F(EventLogTest, MissingIntervals) {
  EXPECT_FALSE(log_->IsMissingAt(kItem, 19));
  EXPECT_TRUE(log_->IsMissingAt(kItem, 20));
  EXPECT_TRUE(log_->IsMissingAt(kItem, 24));
  EXPECT_FALSE(log_->IsMissingAt(kItem, 25));  // Reappeared.
  EXPECT_TRUE(log_->IsMissingAt(kItem, 99));   // Never seen again.
  ASSERT_EQ(log_->MissingReports().size(), 2u);
  EXPECT_EQ(log_->MissingReports()[0].until, 25);
  EXPECT_EQ(log_->MissingReports()[1].until, kInfiniteEpoch);
}

TEST_F(EventLogTest, ContentsAt) {
  EXPECT_EQ(log_->ContentsAt(kCase, 20), std::vector<ObjectId>{kItem});
  EXPECT_EQ(log_->ContentsAt(kPallet, 20), std::vector<ObjectId>{kCase});
  std::vector<ObjectId> transitive = log_->ContentsAt(kPallet, 20, true);
  ASSERT_EQ(transitive.size(), 2u);  // Case and, through it, the item.
  EXPECT_TRUE(log_->ContentsAt(kPallet, 35).empty());
}

TEST_F(EventLogTest, ObjectsAt) {
  std::vector<ObjectId> at4 = log_->ObjectsAt(4, 15);
  ASSERT_EQ(at4.size(), 2u);
  EXPECT_EQ(at4[0], kItem);
  EXPECT_EQ(at4[1], kCase);
  EXPECT_EQ(log_->ObjectsAt(4, 25), std::vector<ObjectId>{kCase});
  EXPECT_TRUE(log_->ObjectsAt(9, 15).empty());
}

TEST_F(EventLogTest, Timelines) {
  const std::vector<Stay>& trajectory = log_->TrajectoryOf(kItem);
  ASSERT_EQ(trajectory.size(), 2u);
  EXPECT_EQ(trajectory[0].location, 4);
  EXPECT_EQ(trajectory[1].location, 7);
  EXPECT_EQ(log_->ContainmentsOf(kItem).size(), 1u);
  EXPECT_TRUE(log_->TrajectoryOf(Obj(PackagingLevel::kItem, 99)).empty());
}

TEST_F(EventLogTest, Metadata) {
  EXPECT_EQ(log_->num_objects(), 2u);  // Objects with location stays.
  EXPECT_EQ(log_->first_epoch(), 10);
  EXPECT_EQ(log_->last_epoch(), 60);
}

TEST(EventLogBuildTest, RejectsIllFormedStreams) {
  EventStream bad{Event::EndLocation(kItem, 4, 1, 2)};
  EXPECT_FALSE(EventLog::Build(bad).ok());
}

TEST(EventLogBuildTest, AcceptsOpenTrailingEvents) {
  EventStream open{Event::StartLocation(kItem, 4, 10)};
  auto log = EventLog::Build(open);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value().LocationAt(kItem, 1000), 4);  // Open-ended stay.
}

TEST(EventLogInverseIndexTest, NestedContainmentAcrossReopenedStays) {
  // The case sits in the pallet twice ([5,15) and [25,35)); the item enters
  // the SAME case twice ([10,20) and [30,40)). Inverse indexes must track
  // each stay independently.
  EventStream stream{
      Event::StartLocation(kPallet, 4, 5),
      Event::StartLocation(kCase, 4, 5),
      Event::StartContainment(kCase, kPallet, 5),
      Event::StartLocation(kItem, 4, 10),
      Event::StartContainment(kItem, kCase, 10),
      Event::EndContainment(kCase, kPallet, 5, 15),
      Event::EndContainment(kItem, kCase, 10, 20),
      Event::StartContainment(kCase, kPallet, 25),
      Event::StartContainment(kItem, kCase, 30),
      Event::EndContainment(kCase, kPallet, 25, 35),
      Event::EndContainment(kItem, kCase, 30, 40),
      Event::EndLocation(kItem, 4, 10, 40),
      Event::EndLocation(kPallet, 4, 5, 45),
      Event::EndLocation(kCase, 4, 5, 50),
  };
  auto built = EventLog::Build(stream);
  ASSERT_TRUE(built.ok());
  const EventLog& log = built.value();

  // Direct contents around the first stay, the gap, and the re-entry into
  // the same container.
  EXPECT_EQ(log.ContentsAt(kCase, 12), std::vector<ObjectId>{kItem});
  EXPECT_TRUE(log.ContentsAt(kCase, 22).empty());
  EXPECT_EQ(log.ContentsAt(kCase, 31), std::vector<ObjectId>{kItem});
  EXPECT_TRUE(log.ContentsAt(kCase, 40).empty());  // End exclusive.

  // Transitive contents of the pallet across both of its stays.
  std::vector<ObjectId> first = log.ContentsAt(kPallet, 12, true);
  ASSERT_EQ(first.size(), 2u);  // Case plus, through it, the item.
  // During the second pallet stay but before the item re-enters the case.
  EXPECT_EQ(log.ContentsAt(kPallet, 27, true), std::vector<ObjectId>{kCase});
  std::vector<ObjectId> second = log.ContentsAt(kPallet, 32, true);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(log.TopLevelContainerAt(kItem, 32), kPallet);
  EXPECT_EQ(log.TopLevelContainerAt(kItem, 38), kCase);  // Pallet stay over.

  // Location inverse index with all three objects co-located.
  EXPECT_EQ(log.ObjectsAt(4, 12).size(), 3u);
  EXPECT_EQ(log.ObjectsAt(4, 47), std::vector<ObjectId>{kCase});
  EXPECT_TRUE(log.ObjectsAt(4, 50).empty());
}

TEST(EventLogArchiveTest, FromArchiveRestrictedWindow) {
  const std::string path = ::testing::TempDir() + "/query_archive.sparc";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
  auto writer = ArchiveWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(SampleStream()).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());

  // Unrestricted: answers match a log built straight from the stream.
  auto full = EventLog::FromArchive(reader.value(), 0, kInfiniteEpoch);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().LocationAt(kItem, 15), 4);
  EXPECT_EQ(full.value().ContainerAt(kItem, 20), kCase);
  EXPECT_EQ(full.value().TopLevelContainerAt(kItem, 20), kPallet);

  // Restricted to [35, 60]: only End/Missing messages fall inside, and the
  // repair re-materializes their Starts so intervals overlapping the window
  // remain queryable...
  auto windowed = EventLog::FromArchive(reader.value(), 35, 60);
  ASSERT_TRUE(windowed.ok());
  const EventLog& log = windowed.value();
  EXPECT_EQ(log.ContainerAt(kItem, 38), kCase);  // Stay [12,40).
  EXPECT_EQ(log.LocationAt(kItem, 40), 7);       // Stay [25,50).
  EXPECT_EQ(log.LocationAt(kCase, 45), 4);       // Stay [10,60).
  EXPECT_TRUE(log.IsMissingAt(kItem, 55));
  // ...while history that closed before the window is absent.
  EXPECT_EQ(log.LocationAt(kItem, 15), kUnknownLocation);
  EXPECT_EQ(log.ContainerAt(kCase, 20), kNoObject);
}

TEST(EventLogArchiveTest, FromArchiveRangeBoundaries) {
  const std::string path = ::testing::TempDir() + "/query_bounds.sparc";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
  ArchiveOptions options;
  options.block_events = 3;  // Force the window to straddle several blocks.
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(SampleStream()).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_GT(reader.value().num_blocks(), 1u);

  // Empty window past every event: a valid, vacant log.
  auto past = EventLog::FromArchive(reader.value(), 1000, 2000);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().Objects().empty());
  EXPECT_EQ(past.value().LocationAt(kItem, 1500), kUnknownLocation);

  // Inverted window: no events qualify either.
  auto inverted = EventLog::FromArchive(reader.value(), 50, 20);
  ASSERT_TRUE(inverted.ok());
  EXPECT_TRUE(inverted.value().Objects().empty());

  // Degenerate window on exactly one primary timestamp: the two Starts at
  // epoch 10 are included (lo inclusive) and stay open — no End in range.
  auto at10 = EventLog::FromArchive(reader.value(), 10, 10);
  ASSERT_TRUE(at10.ok());
  EXPECT_EQ(at10.value().LocationAt(kItem, 1000), 4);
  EXPECT_EQ(at10.value().LocationAt(kCase, 1000), 4);
  EXPECT_EQ(at10.value().ContainerAt(kItem, 15), kNoObject);  // Start at 12.

  // One past that timestamp excludes them (lo is a strict boundary).
  auto at11 = EventLog::FromArchive(reader.value(), 11, 11);
  ASSERT_TRUE(at11.ok());
  EXPECT_EQ(at11.value().LocationAt(kItem, 1000), kUnknownLocation);

  // Window ending exactly on an End's primary timestamp (hi inclusive):
  // the repair re-materializes the Start, so the full stay is queryable.
  auto at60 = EventLog::FromArchive(reader.value(), 60, 60);
  ASSERT_TRUE(at60.ok());
  EXPECT_EQ(at60.value().LocationAt(kCase, 59), 4);   // Stay [10,60).
  EXPECT_EQ(at60.value().LocationAt(kCase, 60), kUnknownLocation);

  // Window whose lower bound bisects open stays: Ends inside the window
  // resurrect their Starts; fully-closed earlier history stays out.
  auto tail = EventLog::FromArchive(reader.value(), 45, kInfiniteEpoch);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().LocationAt(kItem, 45), 7);   // Stay [25,50).
  EXPECT_TRUE(tail.value().IsMissingAt(kItem, 55));   // Missing at 50.
  EXPECT_EQ(tail.value().LocationAt(kItem, 15), kUnknownLocation);
  EXPECT_EQ(tail.value().ContainerAt(kItem, 30), kNoObject);  // End at 40.
}

// --- Segment-direct serving (src/query/segment_log) -------------------------

class SegmentLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/segment_log.sparc";
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(IndexPathFor(path_), ec);
    ArchiveOptions options;
    options.block_events = 3;  // Several blocks so the epoch cut matters.
    auto writer = ArchiveWriter::Open(path_, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(SampleStream()).ok());
    ASSERT_TRUE(writer.value()->Close().ok());

    cache_ = std::make_shared<BlockCache>(1 << 20);
    auto log = SegmentLog::Open(path_, ReaderOptions{}, cache_);
    ASSERT_TRUE(log.ok());
    log_ = std::move(log).value();

    auto baseline = EventLog::FromArchive(log_->reader(), 0, kInfiniteEpoch);
    ASSERT_TRUE(baseline.ok());
    baseline_ = std::make_unique<EventLog>(std::move(baseline).value());
  }

  std::string path_;
  std::shared_ptr<BlockCache> cache_;
  std::unique_ptr<SegmentLog> log_;
  std::unique_ptr<EventLog> baseline_;
};

TEST_F(SegmentLogTest, MatchesEventLogAtEveryEdgeEpoch) {
  const std::vector<ObjectId> objects{kItem, kItem2, kCase, kPallet,
                                      Obj(PackagingLevel::kItem, 99)};
  // Every interval endpoint in SampleStream, its neighbors, and beyond.
  const std::vector<Epoch> epochs{0,  9,  10, 11, 12, 15, 19, 20, 24, 25,
                                  30, 39, 40, 49, 50, 55, 59, 60, 99};
  for (ObjectId object : objects) {
    for (Epoch epoch : epochs) {
      auto location = log_->LocationAt(object, epoch);
      ASSERT_TRUE(location.ok());
      EXPECT_EQ(location.value(), baseline_->LocationAt(object, epoch))
          << "LocationAt(" << object << ", " << epoch << ")";
      auto container = log_->ContainerAt(object, epoch);
      ASSERT_TRUE(container.ok());
      EXPECT_EQ(container.value(), baseline_->ContainerAt(object, epoch));
      auto missing = log_->IsMissingAt(object, epoch);
      ASSERT_TRUE(missing.ok());
      EXPECT_EQ(missing.value(), baseline_->IsMissingAt(object, epoch))
          << "IsMissingAt(" << object << ", " << epoch << ")";
      auto contents = log_->ContentsAt(object, epoch, /*transitive=*/true);
      ASSERT_TRUE(contents.ok());
      EXPECT_EQ(contents.value(), baseline_->ContentsAt(object, epoch, true));
    }
  }
  for (LocationId location : {LocationId{4}, LocationId{7}, LocationId{9}}) {
    for (Epoch epoch : epochs) {
      auto objects_at = log_->ObjectsAt(location, epoch);
      ASSERT_TRUE(objects_at.ok());
      EXPECT_EQ(objects_at.value(), baseline_->ObjectsAt(location, epoch));
    }
  }
}

TEST_F(SegmentLogTest, PointAnswers) {
  EXPECT_EQ(log_->LocationAt(kItem, 19).value(), 4);
  EXPECT_EQ(log_->LocationAt(kItem, 20).value(), kUnknownLocation);
  EXPECT_EQ(log_->ContainerAt(kItem, 12).value(), kCase);
  EXPECT_TRUE(log_->IsMissingAt(kItem, 24).value());
  EXPECT_FALSE(log_->IsMissingAt(kItem, 25).value());
  EXPECT_TRUE(log_->IsMissingAt(kItem, 99).value());  // Open Missing report.
  EXPECT_EQ(log_->ContentsAt(kPallet, 20).value(),
            std::vector<ObjectId>{kCase});
  EXPECT_EQ(log_->ContentsAt(kPallet, 20, true).value().size(), 2u);
  auto trajectory = log_->TrajectoryOf(kItem);
  ASSERT_TRUE(trajectory.ok());
  EXPECT_EQ(trajectory.value(), baseline_->TrajectoryOf(kItem));
  EXPECT_TRUE(log_->TrajectoryOf(kItem2).value().empty());
}

TEST_F(SegmentLogTest, CacheCountersReconcile) {
  for (Epoch epoch : {0, 15, 30, 55, 15, 30}) {
    ASSERT_TRUE(log_->LocationAt(kItem, epoch).ok());
    ASSERT_TRUE(log_->ObjectsAt(4, epoch).ok());
  }
  const BlockCache::Stats stats = cache_->GetStats();
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(log_->blocks_decoded(), stats.misses);
  EXPECT_GT(stats.hits, 0u);  // Repeat epochs must hit.
}

TEST_F(SegmentLogTest, ServesWithoutACache) {
  auto uncached = SegmentLog::Open(path_);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(uncached.value()->LocationAt(kItem, 30).value(), 7);
  EXPECT_EQ(uncached.value()->ContainerAt(kCase, 20).value(), kPallet);
  EXPECT_GT(uncached.value()->blocks_decoded(), 0u);
}

TEST_F(SegmentLogTest, DistinctOpensNeverAliasCacheEntries) {
  auto other = SegmentLog::Open(path_, ReaderOptions{}, cache_);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value()->segment_tag(), log_->segment_tag());
  // The second view decodes its own blocks even though the first already
  // cached the same indexes (snapshot isolation across opens).
  ASSERT_TRUE(log_->LocationAt(kItem, 15).ok());
  const std::uint64_t before = other.value()->blocks_decoded();
  ASSERT_TRUE(other.value()->LocationAt(kItem, 15).ok());
  EXPECT_GT(other.value()->blocks_decoded(), before);
}

TEST_F(SegmentLogTest, ConcurrentQueriesAgree) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const Epoch epoch = (t * 50 + round) % 70;
        auto location = log_->LocationAt(kItem, epoch);
        if (!location.ok() ||
            location.value() != baseline_->LocationAt(kItem, epoch)) {
          ++mismatches[t];
        }
        auto contents = log_->ContentsAt(kPallet, epoch, true);
        if (!contents.ok() ||
            contents.value() != baseline_->ContentsAt(kPallet, epoch, true)) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
  const BlockCache::Stats stats = cache_->GetStats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(log_->blocks_decoded(), stats.misses);
}

// --- Block cache (src/query/block_cache) ------------------------------------

BlockCache::BlockPtr BlockOf(std::size_t events) {
  return std::make_shared<const EventStream>(
      EventStream(events, Event::StartLocation(kItem, 4, 10)));
}

std::uint64_t CostOf(std::size_t events) {
  return events * sizeof(Event) + BlockCache::kEntryOverheadBytes;
}

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(1 << 20, /*num_shards=*/1);
  const std::uint64_t tag = BlockCache::NextSegmentTag();
  EXPECT_EQ(cache.Get(tag, 0), nullptr);
  BlockCache::BlockPtr block = BlockOf(3);
  cache.Put(tag, 0, block);
  EXPECT_EQ(cache.Get(tag, 0), block);
  EXPECT_EQ(cache.Get(tag, 1), nullptr);  // Other index: distinct key.
  const BlockCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.bytes, CostOf(3));
}

TEST(BlockCacheTest, PutIsANoOpOnAnExistingKey) {
  BlockCache cache(1 << 20, /*num_shards=*/1);
  const std::uint64_t tag = BlockCache::NextSegmentTag();
  BlockCache::BlockPtr first = BlockOf(2);
  cache.Put(tag, 7, first);
  cache.Put(tag, 7, BlockOf(5));  // Loser of a same-key miss race.
  EXPECT_EQ(cache.Get(tag, 7), first);
  EXPECT_EQ(cache.GetStats().bytes, CostOf(2));  // Accounting unchanged.
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  // Room for exactly two one-event entries in a single shard.
  BlockCache cache(2 * CostOf(1), /*num_shards=*/1);
  const std::uint64_t tag = BlockCache::NextSegmentTag();
  cache.Put(tag, 1, BlockOf(1));
  cache.Put(tag, 2, BlockOf(1));
  EXPECT_NE(cache.Get(tag, 1), nullptr);  // Refresh: 2 is now the LRU.
  cache.Put(tag, 3, BlockOf(1));
  EXPECT_EQ(cache.Get(tag, 2), nullptr);  // Evicted.
  EXPECT_NE(cache.Get(tag, 1), nullptr);
  EXPECT_NE(cache.Get(tag, 3), nullptr);
  const BlockCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
}

TEST(BlockCacheTest, NeverEvictsTheEntryJustInserted) {
  BlockCache cache(CostOf(1), /*num_shards=*/1);  // Smaller than the block.
  const std::uint64_t tag = BlockCache::NextSegmentTag();
  BlockCache::BlockPtr huge = BlockOf(100);
  cache.Put(tag, 0, huge);
  // Over capacity, but the sole entry survives to serve its next lookup.
  EXPECT_EQ(cache.Get(tag, 0), huge);
}

TEST(BlockCacheTest, EvictedBlockOutlivesEvictionWhileHeld) {
  BlockCache cache(CostOf(1), /*num_shards=*/1);
  const std::uint64_t tag = BlockCache::NextSegmentTag();
  cache.Put(tag, 0, BlockOf(1));
  BlockCache::BlockPtr held = cache.Get(tag, 0);
  ASSERT_NE(held, nullptr);
  cache.Put(tag, 1, BlockOf(1));  // Evicts key 0.
  EXPECT_EQ(cache.Get(tag, 0), nullptr);
  EXPECT_EQ(held->size(), 1u);  // The shared_ptr keeps it alive.
}

TEST(BlockCacheTest, ConcurrentGetPut) {
  BlockCache cache(8 * CostOf(2), /*num_shards=*/4);
  const std::uint64_t tag = BlockCache::NextSegmentTag();
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint32_t round = 0; round < 200; ++round) {
        const std::uint32_t index = round % 16;
        if (cache.Get(tag, index) == nullptr) {
          cache.Put(tag, index, BlockOf(2));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const BlockCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.lookups, kThreads * 200u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(EventLogEndToEndTest, QueriesMatchGroundTruth) {
  // Run SPIRE at a perfect read rate over a small trace; the level-2 log
  // (decompressed on build) must answer resides/contained queries in
  // agreement with the simulator's world away from transition moments.
  SimConfig config;
  config.duration_epochs = 1500;
  config.pallet_interval = 400;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 2;
  config.items_per_case = 4;
  config.mean_shelf_stay = 400;
  config.shelf_period = 20;
  config.read_rate = 1.0;
  auto sim = WarehouseSimulator::Create(config);
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream level2;
  // Snapshot the truth at a few probe epochs.
  std::map<Epoch, std::map<ObjectId, std::pair<LocationId, ObjectId>>> probes;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &level2);
    if (s.current_epoch() % 500 == 499) {
      auto& snapshot = probes[s.current_epoch()];
      for (const auto& [id, state] : s.world().objects()) {
        snapshot[id] = {state.location, state.parent};
      }
    }
  }
  pipeline.Finish(s.current_epoch() + 1, &level2);

  auto log = EventLog::Build(level2, /*decompress=*/true);
  ASSERT_TRUE(log.ok());
  std::size_t queries = 0, agree = 0;
  LocationId entry = s.layout().entry_door;
  for (const auto& [epoch, snapshot] : probes) {
    for (const auto& [object, truth] : snapshot) {
      const auto& [location, parent] = truth;
      if (location == entry) continue;  // No output for the warm-up area.
      ++queries;
      if (log.value().LocationAt(object, epoch) == location &&
          log.value().ContainerAt(object, epoch) == parent) {
        ++agree;
      }
    }
  }
  ASSERT_GT(queries, 20u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(queries), 0.9);
}

}  // namespace
}  // namespace spire
