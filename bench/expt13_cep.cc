// Expt 13 (beyond the paper): complex-event pattern detection over the
// compressed stream (src/cep, DESIGN.md §11).
//
// One level-2 warehouse trace is archived and replayed through
// ArchiveReader; the full built-in pattern library then runs under both
// evaluators:
//   - interval: CompressedLog + EvaluateCompressed — per-step feasible
//     interval sets straight off the compressed events, suppressed-child
//     regions replayed lazily per ancestor cluster;
//   - naive: EventLog::Build(decompress=true) + EvaluateNaive — the
//     reference per-epoch NFA simulation over the fully decompressed view.
// The two match sets must be identical (the binary exits nonzero on any
// divergence); the report tracks the per-replay wall clock of each side,
// their ratio (`speedup_naive_over_interval`, the headline number), event
// and pattern throughput, and how little of the stream the interval side
// actually touches. A final section scans three 20%-of-epochs archive
// ranges and detects over each restricted replay.
//
//   ./expt13_cep [full=true] [reps=N] [key=value ...]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cep/compressed_log.h"
#include "cep/library.h"
#include "cep/nfa.h"
#include "eval/table.h"
#include "query/event_log.h"
#include "sim/simulator.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"

using namespace spire;
using namespace spire::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  int reps = static_cast<int>(args.GetInt("reps", 3).value_or(3));
  SimConfig base = SweepConfig(full);
  base.theft_interval = 300;  // Missing events so `theft` & co. fire.
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 13: pattern detection on the compressed stream",
              "beyond the paper; cep/ subsystem (DESIGN.md §11)");

  // --- Trace + archive replay ----------------------------------------------
  auto sim = WarehouseSimulator::Create(base);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    return 1;
  }
  WarehouseSimulator& s = *sim.value();
  PipelineOptions pipeline_options;
  pipeline_options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), pipeline_options);
  EventStream events;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &events);
  }
  pipeline.Finish(s.current_epoch() + 1, &events);

  const std::string archive_path =
      std::filesystem::temp_directory_path().string() + "/expt13_cep.sparc";
  std::error_code ec;
  std::filesystem::remove(archive_path, ec);
  std::filesystem::remove(IndexPathFor(archive_path), ec);
  {
    auto writer = ArchiveWriter::Open(archive_path, ArchiveOptions{});
    Check(writer.status(), "archive open");
    Check(writer.value()->Append(events), "archive append");
    Check(writer.value()->Close(), "archive close");
  }
  auto reader = ArchiveReader::Open(archive_path);
  Check(reader.status(), "archive reader open");
  auto scanned = reader.value().ScanAll();
  Check(scanned.status(), "archive scan");
  if (scanned.value() != events) {
    std::fprintf(stderr, "archive replay diverged from the live stream\n");
    return 1;
  }
  const EventStream& replay = scanned.value();
  const cep::EvalBounds bounds = cep::BoundsOf(replay);
  const double n = static_cast<double>(replay.size());
  std::printf("trace: %zu compressed events over epochs [%lld, %lld]; "
              "library: %zu patterns; reps=%d\n\n",
              replay.size(), static_cast<long long>(bounds.lo),
              static_cast<long long>(bounds.hi),
              cep::BuiltinLibrary().size(), reps);

  // --- Compile the library -------------------------------------------------
  std::vector<cep::CompiledPattern> compiled;
  for (const cep::Pattern& pattern : cep::BuiltinLibrary()) {
    auto result = cep::Compile(pattern, &s.registry());
    if (!result.ok()) {
      std::fprintf(stderr, "compile %s: %s\n", pattern.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    compiled.push_back(std::move(result).value());
  }

  // --- Timed detection: interval vs naive, identical match sets ------------
  const std::size_t k = compiled.size();
  double interval_build_s = 0.0, naive_build_s = 0.0;
  std::vector<double> interval_pat_s(k, 0.0), naive_pat_s(k, 0.0);
  std::vector<std::vector<cep::Match>> interval_matches(k), naive_matches(k);
  double replayed_fraction = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto log = cep::CompressedLog::Build(replay);
    Check(log.status(), "CompressedLog::Build");
    interval_build_s += Seconds(t0);
    for (std::size_t i = 0; i < k; ++i) {
      t0 = std::chrono::steady_clock::now();
      auto matches = cep::EvaluateCompressed(compiled[i], &log.value(), bounds);
      interval_pat_s[i] += Seconds(t0);
      if (rep == 0) interval_matches[i] = std::move(matches);
    }
    if (rep == 0 && !replay.empty()) {
      replayed_fraction = static_cast<double>(log.value().replayed_events()) /
                          static_cast<double>(replay.size());
    }

    t0 = std::chrono::steady_clock::now();
    auto naive_log = EventLog::Build(replay, /*decompress=*/true);
    Check(naive_log.status(), "EventLog::Build");
    naive_build_s += Seconds(t0);
    for (std::size_t i = 0; i < k; ++i) {
      t0 = std::chrono::steady_clock::now();
      auto matches = cep::EvaluateNaive(compiled[i], naive_log.value(), bounds);
      naive_pat_s[i] += Seconds(t0);
      if (rep == 0) naive_matches[i] = std::move(matches);
    }
  }
  std::size_t total_matches = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::string diff =
        cep::DiffMatchSets(interval_matches[i], naive_matches[i],
                           "interval(compressed)", "naive(decompressed)");
    if (!diff.empty()) {
      std::fprintf(stderr, "%s: evaluator divergence: %s\n",
                   compiled[i].name.c_str(), diff.c_str());
      return 1;
    }
    total_matches += interval_matches[i].size();
  }

  const double r = static_cast<double>(reps);
  double interval_eval_s = 0.0, naive_eval_s = 0.0;
  TextTable table({"pattern", "matches", "interval ms", "naive ms", "x"});
  for (std::size_t i = 0; i < k; ++i) {
    interval_eval_s += interval_pat_s[i];
    naive_eval_s += naive_pat_s[i];
    table.AddRow({compiled[i].name, std::to_string(interval_matches[i].size()),
                  TextTable::Num(interval_pat_s[i] / r * 1e3, 2),
                  TextTable::Num(naive_pat_s[i] / r * 1e3, 2),
                  TextTable::Num(naive_pat_s[i] /
                                     std::max(interval_pat_s[i], 1e-9),
                                 1)});
  }
  table.Print();

  const double interval_s = (interval_build_s + interval_eval_s) / r;
  const double naive_s = (naive_build_s + naive_eval_s) / r;
  const double speedup = naive_s / std::max(interval_s, 1e-12);
  std::printf("\nper replay: interval %.2f ms (build %.2f + eval %.2f), "
              "naive %.2f ms (build %.2f + eval %.2f) -> %.1fx\n",
              interval_s * 1e3, interval_build_s / r * 1e3,
              interval_eval_s / r * 1e3, naive_s * 1e3, naive_build_s / r * 1e3,
              naive_eval_s / r * 1e3, speedup);
  std::printf("cluster replays pushed %.2fx the stream's events (overlapping "
              "ancestor closures); %zu matches per replay (identical sets)\n",
              replayed_fraction, total_matches);
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "speedup %.2fx below the 2x floor the interval evaluator is "
                 "designed to clear\n",
                 speedup);
    return 1;
  }

  // --- Range scans: detection over archive segments ------------------------
  const Epoch span = bounds.hi - bounds.lo;
  double range_s = 0.0;
  std::size_t range_events = 0, range_matches = 0, range_blocks = 0;
  const int kWindows = 3;
  for (int w = 0; w < kWindows; ++w) {
    const Epoch lo = bounds.lo + span * (10 + 30 * w) / 100;
    const Epoch hi = lo + span * 20 / 100;
    range_blocks += reader.value().BlocksInRange(lo, hi);
    auto t0 = std::chrono::steady_clock::now();
    auto ranged = reader.value().ScanRange(lo, hi);
    Check(ranged.status(), "range scan");
    EventStream segment = RepairRestrictedStream(ranged.value());
    auto log = cep::CompressedLog::Build(segment);
    Check(log.status(), "segment CompressedLog::Build");
    const cep::EvalBounds clamped{lo, hi};
    for (const cep::CompiledPattern& pattern : compiled) {
      range_matches +=
          cep::EvaluateCompressed(pattern, &log.value(), clamped).size();
    }
    range_s += Seconds(t0);
    range_events += segment.size();
  }
  std::printf("\narchive range detection: %d windows of 20%% of epochs, "
              "%zu blocks decoded, %zu events, %zu matches, %.2f ms total\n",
              kWindows, range_blocks, range_events, range_matches,
              range_s * 1e3);

  BenchReport report("cep");
  report.Add("events", n);
  report.Add("patterns", static_cast<double>(k));
  report.Add("total_matches", static_cast<double>(total_matches));
  report.Add("interval_seconds", interval_s);
  report.Add("naive_seconds", naive_s);
  report.Add("speedup_naive_over_interval", speedup);
  report.Add("interval_events_per_second", n / std::max(interval_s, 1e-12));
  report.Add("interval_patterns_per_second",
             static_cast<double>(k) / std::max(interval_s, 1e-12));
  report.Add("replayed_event_fraction", replayed_fraction);
  report.Add("range_scan_seconds", range_s);
  report.Add("range_matches", static_cast<double>(range_matches));
  Check(report.Write(), "report write");

  std::filesystem::remove(archive_path, ec);
  std::filesystem::remove(IndexPathFor(archive_path), ec);
  return 0;
}
