// Expt 3 (Fig. 9(d)): sensitivity of location and containment inference to
// the read rate, varied uniformly for all readers (shelf readers at one
// reading per minute, the paper's default).
//
//   ./expt3_read_rate [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 3: inference error vs read rate", "Fig. 9(d)");

  TextTable table({"read rate", "location error", "containment error"});
  for (double read_rate : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    RunOptions options;
    options.sim = base;
    options.sim.read_rate = read_rate;
    RunMetrics metrics = RunSpireTrace(options);
    table.AddRow({TextTable::Num(read_rate, 2),
                  TextTable::Num(metrics.accuracy.LocationErrorRate(), 4),
                  TextTable::Num(metrics.accuracy.ContainmentErrorRate(), 4)});
  }
  table.Print();
  return 0;
}
