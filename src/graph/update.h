// Stream-driven graph construction (Section III-B, Fig. 4).
//
// The updater consumes one reading set R_k per reader per epoch and applies
// the four-step procedure: (1) create and color nodes, (2) add containment-
// candidate edges between newly colored nodes and same-colored nodes in the
// closest layers above/below, (3) remove edges invalidated by diverging
// colors or by special-reader confirmations, and (4) update per-edge
// co-location statistics and per-node confirmation state. The procedure is
// incremental: applying the batches of an epoch in any reader order yields a
// consistent graph after the last batch.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "stream/epoch_stream.h"
#include "stream/reader.h"

namespace spire {

/// Counters reported by one update call (observability + tests).
struct UpdateStats {
  std::size_t readings = 0;
  std::size_t nodes_created = 0;
  std::size_t edges_created = 0;
  std::size_t edges_removed = 0;
  std::size_t colocations_recorded = 0;
  std::size_t confirmations = 0;
  std::size_t conflicts_recorded = 0;

  UpdateStats& operator+=(const UpdateStats& other);
};

/// Applies reading sets to a Graph. One instance per Graph.
class GraphUpdater {
 public:
  GraphUpdater(Graph* graph, const ReaderRegistry* registry)
      : graph_(graph), registry_(registry) {}

  /// Starts a new epoch on the underlying graph and clears the exit list.
  void BeginEpoch(Epoch now);

  /// graph_update(G, R_k): applies one reader's reading set.
  UpdateStats ApplyReaderBatch(const ReaderBatch& batch);

  /// Convenience: BeginEpoch + ApplyReaderBatch for every reader of the
  /// epoch, in batch order.
  UpdateStats ApplyEpoch(const EpochBatch& batch);

  /// Objects read by exit-door readers this epoch. The pipeline removes
  /// their nodes after inference (Section IV's graph pruning rule 1).
  const std::vector<ObjectId>& exited_this_epoch() const { return exited_; }

 private:
  /// Special-reader domain knowledge for one batch: the unique top-level
  /// container on the belt and its directly contained (adjacent-layer)
  /// objects.
  struct Confirmation {
    bool active = false;
    ObjectId top = kNoObject;
    std::unordered_set<ObjectId> children;
  };

  Confirmation ComputeConfirmation(const ReaderBatch& batch) const;
  void ProcessIncidentEdges(Node& v, LocationId color,
                            const Confirmation& confirmation,
                            UpdateStats* stats);
  void UpdateEdgeStats(Edge& e, bool same_color, const Confirmation& confirmation,
                       UpdateStats* stats);

  Graph* graph_;
  const ReaderRegistry* registry_;
  std::vector<ObjectId> exited_;
};

}  // namespace spire
