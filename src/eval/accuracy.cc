#include "eval/accuracy.h"

namespace spire {

AccuracyStats EvaluateEstimates(const InferenceResult& result,
                                const PhysicalWorld& world,
                                LocationId exclude_location) {
  AccuracyStats stats;
  for (const auto& [id, estimate] : result.estimates) {
    const ObjectState* truth = world.Find(id);
    if (truth == nullptr) continue;  // Already exited; nothing to score.
    if (exclude_location != kUnknownLocation &&
        truth->location == exclude_location) {
      continue;
    }
    if (!estimate.withheld) {
      ++stats.location_total;
      if (estimate.location != truth->location) ++stats.location_errors;
    }
    ++stats.containment_total;
    if (estimate.container != truth->parent) ++stats.containment_errors;
  }
  return stats;
}

}  // namespace spire
