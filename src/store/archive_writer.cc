#include "store/archive_writer.h"

#include <filesystem>
#include <system_error>

#include "obs/registry.h"
#include "store/block.h"
#include "store/crc32.h"
#include "store/little_endian.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* events_appended;
  obs::Counter* blocks_sealed;
  obs::Counter* bytes_written;
};

const Instruments* GetInstruments() {
  if (!spire::obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("store", "events_appended"),
      registry.GetCounter("store", "blocks_sealed"),
      registry.GetCounter("store", "bytes_written"),
  };
  return &instruments;
}

std::vector<std::uint8_t> MakeFileHeader(std::uint16_t version) {
  std::vector<std::uint8_t> header;
  for (std::size_t i = 0; i < kMagicBytes; ++i) {
    header.push_back(static_cast<std::uint8_t>(kArchiveMagic[i]));
  }
  PutLE16(version, &header);
  PutLE16(0, &header);  // Reserved.
  return header;
}

Status WriteBytes(std::ofstream* out, const std::vector<std::uint8_t>& bytes,
                  const std::string& path) {
  out->write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out->good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace

ArchiveWriter::ArchiveWriter(std::string path, ArchiveOptions options)
    : path_(std::move(path)), options_(options) {}

Result<std::unique_ptr<ArchiveWriter>> ArchiveWriter::Open(
    const std::string& path, ArchiveOptions options) {
  if (options.block_events == 0) {
    return Status::InvalidArgument("block_events must be positive");
  }
  if (options.format_version != kArchiveVersion &&
      options.format_version != kArchiveVersionV1) {
    return Status::InvalidArgument("unsupported archive format version " +
                                   std::to_string(options.format_version));
  }
  std::unique_ptr<ArchiveWriter> writer(new ArchiveWriter(path, options));

  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec) &&
                      std::filesystem::file_size(path, ec) > 0;
  if (exists) {
    auto scan = ScanSegment(path);
    if (!scan.ok()) return scan.status();
    writer->info_ = std::move(scan).value();
    writer->recovery_.recovered_events = writer->info_.events;
    writer->recovery_.recovered_blocks = writer->info_.blocks.size();
    if (writer->info_.file_bytes > writer->info_.valid_bytes) {
      writer->recovery_.truncated_bytes =
          writer->info_.file_bytes - writer->info_.valid_bytes;
      std::filesystem::resize_file(path, writer->info_.valid_bytes, ec);
      if (ec) {
        return Status::Internal("cannot truncate torn tail of " + path + ": " +
                                ec.message());
      }
      writer->info_.file_bytes = writer->info_.valid_bytes;
    }
    writer->out_.open(path, std::ios::binary | std::ios::app);
    if (!writer->out_) {
      return Status::NotFound("cannot open for appending: " + path);
    }
  } else {
    writer->info_.version = options.format_version;
    writer->out_.open(path, std::ios::binary | std::ios::trunc);
    if (!writer->out_) {
      return Status::NotFound("cannot open for writing: " + path);
    }
    SPIRE_RETURN_NOT_OK(
        WriteBytes(&writer->out_, MakeFileHeader(writer->info_.version),
                   path));
    writer->info_.valid_bytes = kArchiveHeaderBytes;
    writer->info_.file_bytes = kArchiveHeaderBytes;
  }
  // v1 block headers carry no codec field, so a v1 segment can only grow
  // varint blocks.
  if (writer->info_.version == kArchiveVersionV1) {
    writer->options_.codec = BlockCodec::kVarint;
  }
  // From here until Close() any existing sidecar describes a stale prefix
  // — and could even re-match by size if a truncated segment is re-grown.
  // Delete it now; Close() writes a fresh one.
  std::filesystem::remove(IndexPathFor(path), ec);
  return writer;
}

Status ArchiveWriter::Append(const Event& event) {
  if (closed_) return Status::Internal("archive writer already closed");
  SPIRE_RETURN_NOT_OK(ValidateArchivable(event));
  if (const Instruments* instruments = GetInstruments()) {
    instruments->events_appended->Add(1);
  }
  buffer_.push_back(event);
  if (buffer_.size() >= options_.block_events) return SealBlock();
  return Status::OK();
}

Status ArchiveWriter::Append(const EventStream& events) {
  for (const Event& event : events) SPIRE_RETURN_NOT_OK(Append(event));
  return Status::OK();
}

Status ArchiveWriter::SealBlock() {
  auto encoded = EncodeBlock(buffer_, 0, buffer_.size(), options_.codec);
  if (!encoded.ok()) return encoded.status();
  const EncodedBlock& block = encoded.value();

  BlockHeader header;
  header.count = block.count;
  header.codec = block.codec;
  header.min_epoch = block.min_epoch;
  header.max_epoch = block.max_epoch;
  header.payload_size = static_cast<std::uint32_t>(block.payload.size());
  header.payload_crc = Crc32(block.payload.data(), block.payload.size());
  std::vector<std::uint8_t> header_bytes;
  header_bytes.reserve(BlockHeaderBytes(info_.version));
  AppendBlockHeader(header, info_.version, &header_bytes);

  SPIRE_RETURN_NOT_OK(WriteBytes(&out_, header_bytes, path_));
  SPIRE_RETURN_NOT_OK(WriteBytes(&out_, block.payload, path_));

  BlockMeta meta;
  meta.offset = info_.valid_bytes;
  meta.count = block.count;
  meta.codec = block.codec;
  meta.min_epoch = block.min_epoch;
  meta.max_epoch = block.max_epoch;
  const auto index = static_cast<std::uint32_t>(info_.blocks.size());
  AddBlockPostings(buffer_, index, &info_);
  info_.blocks.push_back(meta);
  info_.events += block.count;
  info_.valid_bytes += header_bytes.size() + block.payload.size();
  info_.file_bytes = info_.valid_bytes;
  if (const Instruments* instruments = GetInstruments()) {
    instruments->blocks_sealed->Add(1);
    instruments->bytes_written->Add(header_bytes.size() +
                                    block.payload.size());
  }
  buffer_.clear();
  return Status::OK();
}

Status ArchiveWriter::Flush() {
  if (closed_) return Status::Internal("archive writer already closed");
  if (!buffer_.empty()) SPIRE_RETURN_NOT_OK(SealBlock());
  out_.flush();
  if (!out_.good()) return Status::Internal("flush failed: " + path_);
  return Status::OK();
}

Status ArchiveWriter::Close() {
  SPIRE_RETURN_NOT_OK(Flush());
  out_.close();
  closed_ = true;
  return WriteIndexFile(path_, info_);
}

}  // namespace spire
