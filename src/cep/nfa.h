// Compiled patterns and their two evaluators (DESIGN.md §11).
//
// `Compile` checks a parsed pattern's structure, resolves location specs,
// and lays the steps out as a linear NFA: automaton state i means "the
// first i positive steps have matched", negative steps become guards on
// the transition between their neighbouring positives.
//
// Match semantics (the contract both evaluators implement; the
// pattern_equivalence fuzz oracle holds them to it):
//
//   Let the positive steps be p_1..p_k. An instance over the inclusive
//   epoch bounds [lo, hi] is a chain t_1 < t_2 < ... < t_k with
//     - P_{p_1} holds at t_1 and t_1 is an *onset*: t_1 == lo or P_{p_1}
//       is false at t_1 - 1;
//     - P_{p_i} holds at t_i;
//     - a WITHIN w on p_i (i >= 2) or on the negative step before it
//       bounds t_i - t_{i-1} <= w;
//     - a negative step between p_i and p_{i+1} forbids its predicate at
//       every epoch strictly between t_i and t_{i+1};
//     - a trailing negative step (always windowed) forbids its predicate
//       over (t_k, t_k + w] and requires t_k + w <= hi (the absence must
//       be fully observed); the match then completes at t_k + w, at t_k
//       otherwise.
//   Detection is skip-till-next-match: the earliest completion among
//   instances whose t_1 lies past the previous detection's completion
//   epoch; repeated until none remains. The match set of a pattern is the
//   set of (binding, completion) pairs over all variable bindings.
//
// `EvaluateNaive` scans every epoch in [lo, hi] against an EventLog and
// advances NFA run sets point by point — the reference implementation.
// `EvaluateCompressed` computes per-step feasible *epoch interval sets*
// directly from the compressed stream's validity intervals (CompressedLog)
// and intersects them step over step, so its cost scales with the number
// of stays, not the number of epochs, and suppressed-child regions are
// never expanded.
#pragma once

#include <string>
#include <vector>

#include "cep/compressed_log.h"
#include "cep/pattern.h"
#include "common/status.h"
#include "query/event_log.h"

namespace spire {

class ReaderRegistry;

namespace cep {

struct CompiledPredicate {
  PredKind kind = PredKind::kMissing;
  int var = -1;   ///< Subject, as an index into CompiledPattern::vars.
  int var2 = -1;  ///< Second variable (kIn / kContains).
  std::vector<LocationId> locations;  ///< kAt targets, ascending.
};

struct CompiledStep {
  bool negated = false;
  CompiledPredicate pred;
  Epoch within = 0;  ///< 0 = unbounded.
};

/// A validated, registry-resolved pattern.
struct CompiledPattern {
  std::string name;
  std::vector<std::string> vars;  ///< First-appearance order.
  std::vector<CompiledStep> steps;
  std::vector<int> positive;  ///< Indices of the positive steps, in order.
  /// guard[i]: index of the negative step between positive i-1 and i
  /// (-1 when absent; guard[0] is always -1).
  std::vector<int> guard;
  int trailing_guard = -1;  ///< Negative step after the last positive.

  /// Window bound on t_i - t_{i-1} into positive step `i`: the tighter of
  /// the positive step's own WITHIN and its guard's (0 = unbounded).
  Epoch WindowInto(std::size_t i) const;
};

/// Validates structure (first step positive, no adjacent negatives, a
/// window on any trailing negative, variables introduced in a positive
/// step — via In/Contains linked to a bound variable unless in the first
/// step) and resolves every location spec against `registry` (nullable:
/// then only numeric specs resolve).
Result<CompiledPattern> Compile(const Pattern& pattern,
                                const ReaderRegistry* registry);

/// One detection. `step_epochs` witnesses the positive-step chain;
/// `event_ids` indexes the compressed stream's supporting events
/// (provenance; filled by EvaluateCompressed only). The oracle compares
/// matches on (pattern, binding, completion) alone.
struct Match {
  std::string pattern;
  std::vector<ObjectId> binding;   ///< Parallel to CompiledPattern::vars.
  std::vector<Epoch> step_epochs;  ///< One per positive step.
  Epoch completion = kNeverEpoch;
  std::vector<std::uint64_t> event_ids;
};

/// Inclusive epoch bounds an evaluation runs over. Both evaluators must be
/// given the same bounds to be comparable.
struct EvalBounds {
  Epoch lo = 0;
  Epoch hi = -1;
};

/// Bounds covering the whole log ([0, -1] — empty — for an empty log).
EvalBounds BoundsOf(const EventLog& log);

/// Bounds covering a raw stream: [min emission epoch, max finite reach].
/// Open trailing events extend only to the last finite endpoint seen.
EvalBounds BoundsOf(const EventStream& stream);

/// Reference evaluator: per-epoch NFA simulation over the decompressed
/// view. Matches come out sorted by (binding, completion).
std::vector<Match> EvaluateNaive(const CompiledPattern& pattern,
                                 const EventLog& log, EvalBounds bounds);

/// Interval evaluator over the compressed stream; no per-epoch work.
/// Matches come out sorted by (binding, completion), with provenance.
std::vector<Match> EvaluateCompressed(const CompiledPattern& pattern,
                                      CompressedLog* log, EvalBounds bounds);

/// Human-readable first divergence between two match sets compared on
/// (binding, completion); "" when equal. Inputs must be sorted as the
/// evaluators emit them.
std::string DiffMatchSets(const std::vector<Match>& a,
                          const std::vector<Match>& b,
                          const std::string& a_name, const std::string& b_name);

/// One-line rendering of a match (CLI + diffs).
std::string ToString(const CompiledPattern& pattern, const Match& match);

}  // namespace cep
}  // namespace spire
