// Well-formedness validation of compressed event streams (Section V-A).
//
// A stream is well-formed when, for every object, each start location
// (containment) message has a matching end message, and a Missing message
// appears outside any start-end location pair. Nesting is free-form:
// a containment pair may span several location pairs (the pair moves
// together through locations), may enclose Missing events, and a location
// pair may cover several containment pairs (repacking in place).
#pragma once

#include "common/status.h"
#include "compress/event.h"

namespace spire {

/// Checks the whole stream; the first violation is reported as a Corruption
/// status naming the offending event. `allow_open_at_end` accepts streams
/// whose trailing events are still open (a live stream observed mid-run).
Status ValidateWellFormed(const EventStream& stream,
                          bool allow_open_at_end = false);

}  // namespace spire
