// Unit tests of the observability layer (src/obs): histogram bucket math
// and quantile interpolation, concurrent instrument recording (the
// SPIRE_SANITIZE=thread build makes these real races if they are), trace
// JSON well-formedness, registry dump round-trips, and the explain log's
// JSONL shape.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/merge_trace.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace spire::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i spans [2^i, 2^(i+1)); sub-1 samples clamp up, huge samples
  // clamp into the last bucket.
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 0);
  EXPECT_EQ(Histogram::BucketOf(2), 1);
  EXPECT_EQ(Histogram::BucketOf(3), 1);
  EXPECT_EQ(Histogram::BucketOf(4), 2);
  EXPECT_EQ(Histogram::BucketOf(7), 2);
  EXPECT_EQ(Histogram::BucketOf(8), 3);
  EXPECT_EQ(Histogram::BucketOf((std::uint64_t{1} << 39) - 1), 38);
  EXPECT_EQ(Histogram::BucketOf(std::uint64_t{1} << 39), 39);
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 16u);

  Histogram histogram;
  histogram.Record(0);  // Clamps to 1.
  histogram.Record(1);
  histogram.Record(2);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.count(), 3u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // Four samples of 10 all land in bucket 3 = [8, 16): the k-th of c
  // samples reports lower + k/c * width.
  Histogram histogram;
  for (int i = 0; i < 4; ++i) histogram.Record(10);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 12.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 14.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.00), 16.0);
  // q=0 still reports the first sample's position, never a negative rank.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 10.0);
}

TEST(HistogramTest, QuantileCrossesBuckets) {
  Histogram histogram;
  histogram.Record(1);  // Bucket 0 = [1, 2).
  histogram.Record(8);  // Bucket 3 = [8, 16).
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 2.0);   // Top of bucket 0.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 16.0);  // Top of bucket 3.
  EXPECT_DOUBLE_EQ(histogram.mean(), 4.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 8.0);
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  histogram.Record(100);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(HistogramTest, RecordSecondsUsesMicroseconds) {
  Histogram histogram;
  histogram.RecordSeconds(0.001);  // 1000 us -> bucket 9 = [512, 1024).
  EXPECT_EQ(histogram.bucket(9), 1u);
  histogram.RecordSeconds(-1.0);  // Clamps to 1 us.
  EXPECT_EQ(histogram.bucket(0), 1u);
}

// Samples a live histogram into the plain-value mirror the fleet layer
// ships over the wire (the same copy Registry::TakeSnapshot makes).
HistogramSnapshot SnapshotOf(const Histogram& histogram) {
  HistogramSnapshot snapshot;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    snapshot.buckets[i] = histogram.bucket(i);
  }
  snapshot.count = histogram.count();
  snapshot.total = histogram.total();
  snapshot.max = histogram.max_sample();
  return snapshot;
}

TEST(HistogramSnapshotTest, MergeMatchesOneHistogramFedBothStreams) {
  // Bucket-wise merge must be indistinguishable from a single histogram
  // that recorded both sample streams: same buckets, same count/total/max,
  // and therefore bit-identical interpolated quantiles.
  const std::vector<std::uint64_t> stream_a = {1, 3, 10, 100, 4096, 77};
  const std::vector<std::uint64_t> stream_b = {2, 10, 500000, 8, 8, 9, 1};
  Histogram a;
  Histogram b;
  Histogram both;
  for (std::uint64_t v : stream_a) {
    a.Record(v);
    both.Record(v);
  }
  for (std::uint64_t v : stream_b) {
    b.Record(v);
    both.Record(v);
  }
  HistogramSnapshot merged = SnapshotOf(a);
  merged.Merge(SnapshotOf(b));
  EXPECT_EQ(merged, SnapshotOf(both));
  EXPECT_EQ(merged.count, stream_a.size() + stream_b.size());
  EXPECT_DOUBLE_EQ(merged.mean(), both.mean());
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), both.Quantile(q)) << "q=" << q;
  }
  // Quantiles stay monotone and bounded by the max sample's bucket top.
  EXPECT_LE(merged.Quantile(0.5), merged.Quantile(0.95));
  EXPECT_LE(merged.Quantile(0.95), merged.Quantile(0.99));
  EXPECT_LE(merged.Quantile(0.99),
            static_cast<double>(
                Histogram::BucketUpperBound(Histogram::BucketOf(merged.max))));
}

TEST(HistogramSnapshotTest, MergeEmptyAndSingleBucketEdgeCases) {
  // Empty + empty stays empty.
  HistogramSnapshot empty;
  empty.Merge(HistogramSnapshot{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  // An empty snapshot is the merge identity on either side.
  Histogram h;
  h.Record(10);
  h.Record(12);
  const HistogramSnapshot one = SnapshotOf(h);
  HistogramSnapshot right = one;
  right.Merge(HistogramSnapshot{});
  EXPECT_EQ(right, one);
  HistogramSnapshot left;
  left.Merge(one);
  EXPECT_EQ(left, one);

  // Two single-bucket halves merge into the exact four-sample quantiles:
  // four samples of 10 in bucket [8, 16) report 10/12/14/16 at the
  // quartiles regardless of which half each sample arrived in.
  Histogram half_a;
  half_a.Record(10);
  half_a.Record(10);
  Histogram half_b;
  half_b.Record(10);
  half_b.Record(10);
  HistogramSnapshot merged = SnapshotOf(half_a);
  merged.Merge(SnapshotOf(half_b));
  EXPECT_DOUBLE_EQ(merged.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.50), 12.0);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.75), 14.0);
  EXPECT_DOUBLE_EQ(merged.Quantile(1.00), 16.0);
}

TEST(RegistrySnapshotTest, MergeAddsCountersMaxesGaugesUnionsModules) {
  RegistrySnapshot a;
  a.modules["dist"].counters["frames"] = 10;
  a.modules["dist"].gauges["epoch_lag"] = 3;
  a.modules["graph"].counters["edges"] = 1;
  HistogramSnapshot& lat_a = a.modules["dist"].histograms["latency_us"];
  lat_a.buckets[0] = 2;
  lat_a.count = 2;
  lat_a.total = 2;
  lat_a.max = 1;

  RegistrySnapshot b;
  b.modules["dist"].counters["frames"] = 5;
  b.modules["dist"].gauges["epoch_lag"] = 7;
  b.modules["dist"].gauges["clock_offset_us"] = -4;
  b.modules["stream"].counters["readings"] = 2;
  HistogramSnapshot& lat_b = b.modules["dist"].histograms["latency_us"];
  lat_b.buckets[3] = 1;
  lat_b.count = 1;
  lat_b.total = 10;
  lat_b.max = 10;

  a.Merge(b);
  ASSERT_EQ(a.modules.size(), 3u);  // dist + graph + stream.
  const RegistrySnapshot::Module& dist = a.modules.at("dist");
  EXPECT_EQ(dist.counters.at("frames"), 15u);        // Counters add.
  EXPECT_EQ(dist.gauges.at("epoch_lag"), 7);         // Gauges take the max.
  EXPECT_EQ(dist.gauges.at("clock_offset_us"), -4);  // Union of names.
  const HistogramSnapshot& latency = dist.histograms.at("latency_us");
  EXPECT_EQ(latency.buckets[0], 2u);
  EXPECT_EQ(latency.buckets[3], 1u);
  EXPECT_EQ(latency.count, 3u);
  EXPECT_EQ(latency.total, 12u);
  EXPECT_EQ(latency.max, 10u);
  EXPECT_EQ(a.modules.at("graph").counters.at("edges"), 1u);
  EXPECT_EQ(a.modules.at("stream").counters.at("readings"), 2u);
}

TEST(RegistrySnapshotTest, TakeSnapshotMirrorsLiveValuesAndJson) {
  Registry registry;
  registry.GetCounter("dist", "frames")->Add(42);
  registry.GetGauge("dist", "clock_offset_us")->Set(-17);
  registry.GetHistogram("dist", "latency_us")->Record(100);

  const RegistrySnapshot snapshot = registry.TakeSnapshot();
  const RegistrySnapshot::Module& dist = snapshot.modules.at("dist");
  EXPECT_EQ(dist.counters.at("frames"), 42u);
  EXPECT_EQ(dist.gauges.at("clock_offset_us"), -17);
  EXPECT_EQ(dist.histograms.at("latency_us").count, 1u);

  // The snapshot dumps the exact JSON the live registry dumps.
  EXPECT_EQ(snapshot.ToJson(), registry.ToJson());
}

TEST(ObsConcurrencyTest, CountersSumAcrossThreads) {
  Counter counter;
  Gauge highwater;
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add(1);
        highwater.SetMax(t * kIters + i);
        histogram.Record(static_cast<std::uint64_t>(i % 1000) + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(highwater.value(), (kThreads - 1) * kIters + kIters - 1);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsConcurrencyTest, RegistryRegistrationIsThreadSafe) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // All threads race to register and bump the same instrument.
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("test", "shared")->Add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("test", "shared")->value(), 8000u);
}

TEST(ObsConcurrencyTest, SnapshotVsResetIsAllOrNothing) {
  // TakeSnapshot and Reset serialize on the registry mutex: with no
  // concurrent writers, a snapshot racing a reset must see each histogram
  // either fully populated or fully zeroed — never a torn bucket array
  // (count wiped, buckets not).
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test", "latency");
  Counter* counter = registry.GetCounter("test", "events");
  constexpr std::uint64_t kSamples = 1000;
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < kSamples; ++i) histogram->Record(10);
    counter->Add(kSamples);
    std::thread resetter([&] { registry.Reset(); });
    for (int i = 0; i < 10; ++i) {
      const RegistrySnapshot snapshot = registry.TakeSnapshot();
      const HistogramSnapshot& h =
          snapshot.modules.at("test").histograms.at("latency");
      std::uint64_t bucket_sum = 0;
      for (std::uint64_t b : h.buckets) bucket_sum += b;
      EXPECT_EQ(bucket_sum, h.count);
      EXPECT_TRUE(h.count == 0 || h.count == kSamples) << h.count;
      EXPECT_EQ(h.total, h.count * 10);
      const std::uint64_t events = snapshot.modules.at("test").counters.at(
          "events");
      EXPECT_TRUE(events == 0 || events == kSamples) << events;
    }
    resetter.join();
  }
}

TEST(ObsConcurrencyTest, SnapshotCountTrailsBucketSumBoundedly) {
  // Writers record through relaxed atomics and are not blocked by a
  // snapshot, so count and the bucket sum may disagree — but only by the
  // number of mid-Record threads (each has at most one sample in flight).
  Registry registry;
  Histogram* histogram = registry.GetHistogram("test", "latency");
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) histogram->Record(10);
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const RegistrySnapshot snapshot = registry.TakeSnapshot();
    const HistogramSnapshot& h =
        snapshot.modules.at("test").histograms.at("latency");
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t b : h.buckets) bucket_sum += b;
    // Only this direction is bounded: the sampler reads buckets before
    // count, so records completing in between inflate count freely, but a
    // bucket increment without its count increment needs a mid-Record
    // writer — one sample in flight per thread.
    EXPECT_LE(bucket_sum, h.count + kWriters);
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

TEST(RegistryTest, StablePointersAndDumps) {
  Registry registry;
  Counter* counter = registry.GetCounter("graph", "edges");
  EXPECT_EQ(registry.GetCounter("graph", "edges"), counter);
  counter->Add(3);
  registry.GetGauge("serve", "depth")->SetMax(7);
  registry.GetHistogram("serve", "latency")->Record(100);
  registry.GetCounter("idle", "nothing");  // Registered but inactive.

  EXPECT_EQ(registry.NumActiveModules(), 2u);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("modules with activity: 2 (graph serve)"),
            std::string::npos);
  EXPECT_NE(text.find("graph.edges 3"), std::string::npos);

  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* modules = parsed.value().Find("modules");
  ASSERT_NE(modules, nullptr);
  ASSERT_EQ(modules->type, JsonValue::Type::kObject);
  EXPECT_EQ(modules->object.size(), 3u);
  const JsonValue* graph = modules->Find("graph");
  ASSERT_NE(graph, nullptr);
  const JsonValue* counters = graph->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* edges = counters->Find("edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->text, "3");

  // parse -> serialize -> parse is the identity (numbers stay verbatim).
  auto round_trip = ParseJson(parsed.value().Serialize());
  ASSERT_TRUE(round_trip.ok());
  EXPECT_EQ(round_trip.value(), parsed.value());

  registry.Reset();
  EXPECT_EQ(registry.NumActiveModules(), 0u);
  EXPECT_EQ(registry.GetCounter("graph", "edges"), counter);
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.active());
  const std::size_t before = tracer.num_events();
  {
    ScopedSpan span("test", "noop", 42);
  }
  EXPECT_EQ(tracer.num_events(), before);
}

TEST(TracerTest, WritesWellFormedChromeTrace) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_trace.json")
          .string();
  Tracer& tracer = Tracer::Global();
  ASSERT_TRUE(tracer.Start(path).ok());
  EXPECT_FALSE(tracer.Start(path).ok());  // Second session rejected.
  {
    ScopedSpan outer("test", "outer", 7);
    ScopedSpan inner("test", "inner");
  }
  std::thread([] { ScopedSpan span("test", "worker", 8); }).join();
  EXPECT_EQ(tracer.num_events(), 3u);
  ASSERT_TRUE(tracer.Stop().ok());
  EXPECT_FALSE(tracer.active());
  EXPECT_EQ(tracer.num_events(), 0u);  // Stop drains the buffer.

  auto parsed = ParseJson(ReadFile(path));
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_EQ(events->array.size(), 3u);

  bool saw_epoch_arg = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->type, JsonValue::Type::kString);
    const JsonValue* phase = event.Find("ph");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->text, "X");
    EXPECT_NE(event.Find("cat"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    const JsonValue* pid = event.Find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_EQ(pid->text, "1");
    const JsonValue* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    // Dense thread ids: the main thread and one worker.
    EXPECT_TRUE(tid->text == "0" || tid->text == "1");
    if (const JsonValue* args = event.Find("args"); args != nullptr) {
      if (args->Find("epoch") != nullptr) saw_epoch_arg = true;
    }
  }
  EXPECT_TRUE(saw_epoch_arg);
}

TEST(TracerTest, AsyncSpansAndFleetMetadataRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_async_trace.json")
          .string();
  Tracer& tracer = Tracer::Global();
  ASSERT_TRUE(tracer.Start(path).ok());
  tracer.SetProcessLabel("node7");
  tracer.SetClockOffsetMicros(-250);
  tracer.RecordAsync("handoff", "hop", 'b', 42, 3);
  tracer.RecordAsync("handoff", "hop", 'e', 42, 5);
  EXPECT_EQ(tracer.num_events(), 2u);
  ASSERT_TRUE(tracer.Stop().ok());

  auto parsed = ParseJson(ReadFile(path));
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const JsonValue& event = events->array[i];
    EXPECT_EQ(event.Find("ph")->text, i == 0 ? "b" : "e");
    EXPECT_EQ(event.Find("name")->text, "hop");
    EXPECT_EQ(event.Find("cat")->text, "handoff");
    // Async ids are strings in trace JSON, so Perfetto never coerces them.
    const JsonValue* id = event.Find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->type, JsonValue::Type::kString);
    EXPECT_EQ(id->text, "42");
    EXPECT_NE(event.Find("ts"), nullptr);
  }

  // The "spire" block carries what merge-traces needs to put this file on
  // the fleet timeline; Perfetto ignores the unknown key.
  const JsonValue* spire = parsed.value().Find("spire");
  ASSERT_NE(spire, nullptr);
  EXPECT_NE(spire->Find("origin_us"), nullptr);
  EXPECT_EQ(spire->Find("offset_us")->text, "-250");
  EXPECT_EQ(spire->Find("process")->text, "node7");
}

TEST(MergeTraceTest, RebasesOntoFleetTimelineAndAssignsPids) {
  // Input a: fleet base 1000 + 0; input b: base 500 + 600 = 1100. The
  // merge rebases onto the earliest base, so a's timestamps hold still and
  // b's shift by +100.
  const std::string a =
      "{\"traceEvents\":[{\"name\":\"epoch\",\"cat\":\"pipeline\",\"ph\":"
      "\"X\",\"ts\":5,\"dur\":2,\"pid\":1,\"tid\":0}],"
      "\"spire\":{\"origin_us\":1000,\"offset_us\":0,"
      "\"process\":\"coordinator\"}}";
  const std::string b =
      "{\"traceEvents\":[{\"name\":\"hop\",\"cat\":\"handoff\",\"ph\":\"b\","
      "\"ts\":10,\"pid\":1,\"tid\":0,\"id\":\"4\"},"
      "{\"name\":\"hop\",\"cat\":\"handoff\",\"ph\":\"e\","
      "\"ts\":30,\"pid\":1,\"tid\":2,\"id\":\"4\"}],"
      "\"spire\":{\"origin_us\":500,\"offset_us\":600,"
      "\"process\":\"node0\"}}";
  auto merged = MergeTraceJson({a, b}, {});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto parsed = ParseJson(merged.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 5u);  // 2 process rows + 1 + 2 events.

  // Process rows first, labeled from the inputs' embedded process names.
  for (std::size_t i = 0; i < 2; ++i) {
    const JsonValue& row = events->array[i];
    EXPECT_EQ(row.Find("name")->text, "process_name");
    EXPECT_EQ(row.Find("ph")->text, "M");
    EXPECT_EQ(row.Find("pid")->text, std::to_string(i + 1));
    EXPECT_EQ(row.Find("args")->Find("name")->text,
              i == 0 ? "coordinator" : "node0");
  }

  const JsonValue& from_a = events->array[2];
  EXPECT_EQ(from_a.Find("ts")->text, "5");  // Earliest base: unshifted.
  EXPECT_EQ(from_a.Find("pid")->text, "1");
  const JsonValue& hop_begin = events->array[3];
  EXPECT_EQ(hop_begin.Find("ts")->text, "110");  // 10 + (1100 - 1000).
  EXPECT_EQ(hop_begin.Find("pid")->text, "2");
  EXPECT_EQ(hop_begin.Find("id")->text, "4");  // Async pairing intact.
  const JsonValue& hop_end = events->array[4];
  EXPECT_EQ(hop_end.Find("ts")->text, "130");
  EXPECT_EQ(hop_end.Find("tid")->text, "2");
}

TEST(MergeTraceTest, LabelsOverrideAndMissingMetadataPassesThrough) {
  // Without a "spire" block the input cannot be rebased: timestamps pass
  // through unshifted, and the explicit label names the process row.
  const std::string plain =
      "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\","
      "\"ts\":7,\"dur\":1,\"pid\":9,\"tid\":2}]}";
  auto merged = MergeTraceJson({plain}, {"solo"});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto parsed = ParseJson(merged.value());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[0].Find("args")->Find("name")->text, "solo");
  EXPECT_EQ(events->array[1].Find("ts")->text, "7");
  EXPECT_EQ(events->array[1].Find("pid")->text, "1");  // Reassigned.
  EXPECT_EQ(events->array[1].Find("tid")->text, "2");  // Kept.

  EXPECT_FALSE(MergeTraceJson({}, {}).ok());
}

TEST(ExplainLogTest, JsonlRecordsParse) {
  ExplainLog log;
  EventProvenance provenance;
  provenance.id = 5;
  provenance.type = "StartLocation";
  provenance.object = 42;
  provenance.location = 3;
  provenance.epoch = 17;
  provenance.complete_inference = true;
  provenance.inference_waves = 4;
  provenance.winner_posterior = 0.9;
  provenance.runner_up_posterior = 0.05;
  provenance.stage = "report";
  log.RecordEvent(provenance);
  log.RecordSuppressed(43, 18, 42, "contained");

  auto event_line = ParseJson(ExplainLog::ToJsonLine(log.events()[0]));
  ASSERT_TRUE(event_line.ok()) << event_line.status().ToString();
  EXPECT_EQ(event_line.value().Find("kind")->text, "event");
  EXPECT_EQ(event_line.value().Find("id")->text, "5");
  EXPECT_EQ(event_line.value().Find("type")->text, "StartLocation");
  EXPECT_EQ(event_line.value().Find("complete_inference")->bool_value, true);
  EXPECT_EQ(event_line.value().Find("stage")->text, "report");

  auto suppressed_line =
      ParseJson(ExplainLog::ToJsonLine(log.suppressions()[0]));
  ASSERT_TRUE(suppressed_line.ok());
  EXPECT_EQ(suppressed_line.value().Find("kind")->text, "suppressed");
  EXPECT_EQ(suppressed_line.value().Find("covering_container")->text, "42");
  EXPECT_EQ(suppressed_line.value().Find("reason")->text, "contained");

  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_explain.spexp")
          .string();
  ASSERT_TRUE(log.WriteJsonl(path).ok());
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(ParseJson(line).ok()) << line;
    ++lines;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  EXPECT_EQ(lines, 2u);
}

TEST(JsonTest, NumbersStayVerbatim) {
  // kNoObject is 2^64-1: beyond double precision, so the parser must not
  // go through a double.
  auto parsed = ParseJson("{\"id\":18446744073709551615,\"x\":-0.25e2}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("id")->text, "18446744073709551615");
  EXPECT_EQ(parsed.value().Serialize(),
            "{\"id\":18446744073709551615,\"x\":-0.25e2}");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{}extra").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2,-]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_TRUE(ParseJson("{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}").ok());
}

TEST(EnabledFlagTest, TogglesProcessWide) {
  ASSERT_FALSE(Enabled());  // Tests run with instruments off by default.
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
}

}  // namespace
}  // namespace spire::obs
