// The time-varying colored graph model (Section III-A).
//
// Nodes are RFID-tagged objects, arranged in layers by packaging level and
// colored by the location where they were observed in the current epoch; an
// unobserved node is uncolored but remembers its most recent color and
// observation time. Directed edges parent -> child encode *possible*
// containment; an edge never connects two nodes of different colors. Each
// edge carries a shift-register of recent co-location evidence, and each
// node remembers the last container confirmed by a special reader together
// with a count of conflicting observations since that confirmation.
//
// Storage (hot-path architecture, DESIGN.md §10): nodes live in a chunked
// slot arena addressed by dense NodeId, with the ObjectId -> NodeId hash
// looked up once at ingest; chunks are never reallocated, so Node references
// stay stable across arena growth. Edges name their endpoints both ways —
// by ObjectId (the external identity) and by NodeId (the O(1) hop used in
// inference wave loops). The per-epoch color index is a flat
// vector-of-vectors per layer, cleared in O(colors touched). The graph also
// maintains a dirty set — nodes whose color, adjacency or confirmation
// state changed since the last ClearDirty() — that seeds the incremental
// inference pass.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitvector.h"
#include "common/epc.h"
#include "common/status.h"
#include "common/types.h"

namespace spire {

/// Index of an edge in the graph's edge arena.
using EdgeId = std::uint32_t;
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Index of a node in the graph's node arena.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// The last containment confirmation a node received from a special reader.
struct ConfirmedParent {
  ObjectId parent = kNoObject;
  Epoch confirmed_at = kNeverEpoch;
  /// Observations conflicting with the confirmation since it was made
  /// (drives the adaptive-beta heuristic of Section VI, Expt 1).
  int conflicts = 0;
  /// Observations in which the confirmed edge was exercised (either
  /// co-location or one-sided observation) since the confirmation.
  int observations = 0;

  bool operator==(const ConfirmedParent&) const = default;
};

/// A graph node: one RFID-tagged object. `id == kNoObject` marks a freed
/// arena slot.
struct Node {
  ObjectId id = kNoObject;
  /// This node's own arena slot (so a Node& is enough to index the
  /// inference scratch arrays).
  NodeId self = kNoNode;
  /// Layer = packaging level (item 0, case 1, pallet 2).
  int layer = 0;
  /// Most recent color and when it was observed ((recent color, seen at) of
  /// Section III-A). The node is *colored* in the current epoch iff
  /// colored_epoch equals the graph's current epoch.
  LocationId recent_color = kUnknownLocation;
  Epoch seen_at = kNeverEpoch;
  Epoch colored_epoch = kNeverEpoch;
  /// On the graph's dirty list (maintained by Graph::MarkDirty).
  bool dirty = false;
  ConfirmedParent confirmed;
  /// Incoming edges (possible containers) and outgoing edges (possible
  /// contents).
  std::vector<EdgeId> parent_edges;
  std::vector<EdgeId> child_edges;
};

/// A directed containment-candidate edge parent -> child. Endpoints are
/// named both by ObjectId and by arena NodeId.
struct Edge {
  ObjectId parent = kNoObject;
  ObjectId child = kNoObject;
  NodeId parent_node = kNoNode;
  NodeId child_node = kNoNode;
  /// recent_co-locations: positive/negative co-location evidence, newest
  /// observation at index 0.
  ShiftRegister recent_colocations{32};
  Epoch update_time = kNeverEpoch;
  Epoch created_at = kNeverEpoch;
  bool alive = false;
};

/// The mutable graph. One instance lives for the whole stream; the data
/// capture module updates it every epoch and the interpretation module reads
/// (and prunes) it.
class Graph {
 public:
  /// `history_size` is S, the capacity of every edge's co-location register.
  explicit Graph(int history_size = 32);

  /// Starts a new epoch: all nodes become uncolored (lazily, via the epoch
  /// stamp) and the per-epoch color index is cleared. `now` must increase
  /// strictly. Nodes colored in the previous epoch are marked dirty: losing
  /// the color changes their next estimate (observed -> inferred).
  void BeginEpoch(Epoch now);

  Epoch now() const { return now_; }

  /// Finds or creates the node for an object; the layer is decoded from the
  /// EPC id. Returns the node (reference stable across arena growth).
  Node& GetOrCreateNode(ObjectId id);

  /// Colors a node for the current epoch and updates (recent color, seen
  /// at). Also registers the node in the per-epoch color index and marks it
  /// dirty.
  void ColorNode(Node& node, LocationId color);

  /// True iff the node was observed in the current epoch.
  bool IsColored(const Node& node) const { return node.colored_epoch == now_; }

  /// The node's color this epoch, or kUnknownLocation when uncolored.
  LocationId ColorOf(const Node& node) const {
    return IsColored(node) ? node.recent_color : kUnknownLocation;
  }

  /// Node lookup by object; nullptr when the object has no node.
  Node* FindNode(ObjectId id);
  const Node* FindNode(ObjectId id) const;

  /// Arena slot of an object's node, or kNoNode.
  NodeId FindNodeId(ObjectId id) const {
    auto it = node_ids_.find(id);
    return it == node_ids_.end() ? kNoNode : it->second;
  }

  /// Direct arena access; `id` must be < NodeSlots(). The slot may be freed
  /// (see NodeAlive).
  Node& node(NodeId id) {
    return node_chunks_[id >> kNodeChunkShift][id & (kNodeChunkSize - 1)];
  }
  const Node& node(NodeId id) const {
    return node_chunks_[id >> kNodeChunkShift][id & (kNodeChunkSize - 1)];
  }

  /// True iff the slot currently holds a live node.
  bool NodeAlive(NodeId id) const { return node(id).id != kNoObject; }

  /// Arena slot access that hides freed slots; nullptr for a freed slot.
  Node* NodeAt(NodeId id) {
    Node& n = node(id);
    return n.id == kNoObject ? nullptr : &n;
  }
  const Node* NodeAt(NodeId id) const {
    const Node& n = node(id);
    return n.id == kNoObject ? nullptr : &n;
  }

  /// Number of arena slots ever allocated; NodeIds are always < NodeSlots().
  std::size_t NodeSlots() const { return node_slots_; }

  /// Creates the edge parent -> child unless it already exists; returns its
  /// id either way. The caller guarantees the color constraint.
  EdgeId AddEdge(ObjectId parent, ObjectId child);

  /// Looks up an existing edge parent -> child, or kNoEdge.
  EdgeId FindEdge(ObjectId parent, ObjectId child) const;

  /// Removes an edge from the arena and both adjacency lists; both former
  /// endpoints are marked dirty.
  void RemoveEdge(EdgeId id);

  /// Removes a node and all its incident edges (used when an object exits
  /// the physical world through a proper channel). The freed slot is reused
  /// by a later GetOrCreateNode.
  void RemoveNode(ObjectId id);

  Edge& edge(EdgeId id) { return edges_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// The node at the other end of an edge, as seen from `from`.
  ObjectId OtherEnd(const Edge& e, ObjectId from) const {
    return e.parent == from ? e.child : e.parent;
  }

  /// Ditto by arena slot.
  NodeId OtherEndNode(const Edge& e, NodeId from) const {
    return e.parent_node == from ? e.child_node : e.parent_node;
  }

  /// Nodes colored `color` in the current epoch at the given layer.
  const std::vector<ObjectId>& ColoredAt(LocationId color, int layer) const;

  /// All nodes colored in the current epoch (seed set for inference).
  const std::vector<ObjectId>& ColoredNodes() const { return colored_nodes_; }

  /// Arena slots of ColoredNodes(), in the same order.
  const std::vector<NodeId>& ColoredSlots() const { return colored_slots_; }

  /// Nodes whose color, adjacency or confirmation state changed since the
  /// last ClearDirty(). May contain slots that were freed after being
  /// marked; callers filter with NodeAlive.
  const std::vector<NodeId>& DirtyNodes() const { return dirty_nodes_; }

  /// Marks a node as changed since the last complete inference pass.
  void MarkDirty(Node& node) {
    if (!node.dirty) {
      node.dirty = true;
      dirty_nodes_.push_back(node.self);
    }
  }

  /// Resets the dirty set (called by inference after a complete pass).
  void ClearDirty();

  std::size_t NumNodes() const { return num_alive_nodes_; }
  std::size_t NumEdges() const { return num_alive_edges_; }

  /// Upper bound on edge-arena slots (alive + free-listed); edge ids are
  /// always < EdgeCapacity().
  std::size_t EdgeCapacity() const { return edges_.size(); }

  int history_size() const { return history_size_; }

  /// Deterministic memory accounting in bytes: node, edge, adjacency and
  /// index footprints. Used by the Expt-6 reproduction in place of JVM heap
  /// measurements.
  std::size_t MemoryUsage() const;

 private:
  static constexpr std::size_t kNodeChunkShift = 10;
  static constexpr std::size_t kNodeChunkSize = std::size_t{1}
                                                << kNodeChunkShift;

  void DetachFromAdjacency(std::vector<EdgeId>& list, EdgeId id);
  NodeId AllocateSlot();

  int history_size_;
  Epoch now_ = kNeverEpoch;
  /// Chunked node arena: chunk pointers grow, chunks never move.
  std::vector<std::unique_ptr<Node[]>> node_chunks_;
  std::size_t node_slots_ = 0;
  std::vector<NodeId> free_nodes_;
  std::unordered_map<ObjectId, NodeId> node_ids_;
  std::size_t num_alive_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<EdgeId> free_edges_;
  std::size_t num_alive_edges_ = 0;
  /// Per-epoch index: layer -> color -> colored nodes, flat by LocationId.
  /// `touched_colors_` lists the (layer, color) cells filled this epoch so
  /// BeginEpoch clears in O(touched), not O(location space).
  std::vector<std::vector<ObjectId>> colored_index_[kNumPackagingLevels];
  std::vector<std::pair<int, LocationId>> touched_colors_;
  std::vector<ObjectId> colored_nodes_;
  std::vector<NodeId> colored_slots_;
  std::vector<NodeId> dirty_nodes_;
};

}  // namespace spire
