// Shared trace-runner for the experiment-reproduction benches.
//
// Each bench binary sweeps parameters, calls RunSpireTrace / RunSmurfTrace,
// and prints the same rows/series the paper's table or figure reports.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "eval/accuracy.h"
#include "eval/delay.h"
#include "eval/event_accuracy.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"
#include "smurf/smurf.h"
#include "spire/pipeline.h"

namespace spire::bench {

/// What to run and how to score it.
struct RunOptions {
  SimConfig sim;
  PipelineOptions pipeline;
  /// Accuracy is sampled at complete-inference epochs >= this epoch
  /// (excludes the cold-start window).
  Epoch eval_start = 0;
  /// When set, RunSpireTrace copies the output stream / the simulated
  /// thefts out (expt4's pattern-agreement check needs both).
  EventStream* capture_output = nullptr;
  std::vector<Theft>* capture_thefts = nullptr;
};

/// Everything the experiment reports might need from one trace.
struct RunMetrics {
  AccuracyStats accuracy;
  std::size_t raw_readings = 0;
  std::size_t output_events = 0;
  std::size_t location_messages = 0;
  std::size_t containment_messages = 0;
  /// Output bytes / raw bytes, full stream and location-only restriction.
  double ratio = 0.0;
  double location_ratio = 0.0;
  /// Event accuracy of the (decompressed, entry-stripped) stream.
  EventAccuracy f_all;
  EventAccuracy f_location;
  /// Anomaly detection.
  DelayStats delay;
  /// Costs.
  double update_seconds = 0.0;
  double inference_seconds = 0.0;
  std::size_t epochs = 0;
  /// Graph footprint.
  std::size_t peak_nodes = 0;
  std::size_t peak_memory_bytes = 0;
  std::size_t final_edges = 0;
};

/// Runs the full SPIRE pipeline over a simulated trace.
RunMetrics RunSpireTrace(const RunOptions& options);

/// Runs the SMURF baseline (location events only, level-1 compression).
RunMetrics RunSmurfTrace(const SimConfig& sim, SmurfOptions smurf = {});

/// The paper's default accuracy-experiment workload (Section VI-B): 6
/// pallets/hour, 5 cases each, 20 items per case, 1-hour shelving, 3-hour
/// trace, read rate 0.85, shelf readers once per minute.
SimConfig PaperAccuracyConfig();

/// The paper's output-experiment workload (Section VI-D): 16-hour trace
/// with a steady-state object population. `full` uses the full 16 hours;
/// otherwise a 6-hour version runs by default.
SimConfig PaperOutputConfig(bool full);

/// Parameter-sweep workload: `full` is the paper scale
/// (PaperAccuracyConfig); the default is a 45-minute miniature that keeps
/// the same structure so whole sweeps finish in seconds.
SimConfig SweepConfig(bool full);

/// Parses trailing `key=value` args; exits with a message on bad input.
/// Recognizes `full=true` for paper-scale runs.
Config ParseArgs(int argc, char** argv);

/// Standard bench banner.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// Machine-readable bench results: a flat name -> number map written as
/// `BENCH_<name>.json` into $SPIRE_BENCH_DIR (default: the working
/// directory), so the perf trajectory is trackable across PRs. Write()
/// stamps the process's peak RSS as `peak_rss_bytes` (bytes on every
/// platform — see PeakRssBytes) and the machine's hardware-thread count as
/// `hardware_threads` automatically.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Records one metric; later adds of the same key append in order
  /// (keys should be unique — the JSON is an object).
  void Add(const std::string& key, double value);

  /// The flat JSON object.
  std::string ToJson() const;

  /// Writes `BENCH_<name>.json`; also prints the path on stdout.
  Status Write() const;

  /// Destination path of Write().
  std::string path() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Peak resident set size of this process in bytes (0 when unavailable).
/// getrusage's ru_maxrss is kilobytes on Linux and bytes on macOS; this
/// helper normalizes both to bytes.
std::size_t PeakRssBytes();

}  // namespace spire::bench
