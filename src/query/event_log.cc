#include "query/event_log.h"

#include <algorithm>

#include "compress/decompress.h"
#include "compress/well_formed.h"
#include "compress/fold.h"
#include "store/archive_reader.h"

namespace spire {

Result<EventLog> EventLog::Build(const EventStream& stream, bool decompress) {
  SPIRE_RETURN_NOT_OK(ValidateWellFormed(stream, /*allow_open_at_end=*/true));
  const EventStream& level1_view =
      decompress ? Decompressor::DecompressAll(stream) : stream;

  EventLog log;
  for (const RangedEvent& event : FoldEvents(level1_view)) {
    if (log.first_epoch_ == kNeverEpoch || event.start < log.first_epoch_) {
      log.first_epoch_ = event.start;
    }
    Epoch reach = event.end == kInfiniteEpoch ? event.start : event.end;
    if (log.last_epoch_ == kNeverEpoch || reach > log.last_epoch_) {
      log.last_epoch_ = reach;
    }
    switch (event.type) {
      case EventType::kStartLocation: {
        Stay stay;
        stay.start = event.start;
        stay.end = event.end;
        stay.location = event.location;
        log.locations_[event.object].push_back(stay);
        log.by_location_[event.location].push_back({stay, event.object});
        break;
      }
      case EventType::kStartContainment: {
        Stay stay;
        stay.start = event.start;
        stay.end = event.end;
        stay.container = event.container;
        log.containments_[event.object].push_back(stay);
        log.by_container_[event.container].push_back({stay, event.object});
        break;
      }
      case EventType::kMissing: {
        MissingReport report;
        report.object = event.object;
        report.missing_from = event.location;
        report.since = event.start;
        log.missing_.push_back(report);
        break;
      }
      default:
        break;
    }
  }
  // FoldEvents orders per object by start; per-key vectors inherit that.
  // Close each Missing report at the object's next sighting.
  for (MissingReport& report : log.missing_) {
    auto it = log.locations_.find(report.object);
    if (it == log.locations_.end()) continue;
    for (const Stay& stay : it->second) {
      if (stay.start >= report.since) {
        report.until = stay.start;
        break;
      }
    }
  }
  std::sort(log.missing_.begin(), log.missing_.end(),
            [](const MissingReport& a, const MissingReport& b) {
              if (a.object != b.object) return a.object < b.object;
              return a.since < b.since;
            });
  return log;
}

Result<EventLog> EventLog::FromArchive(const ArchiveReader& archive, Epoch lo,
                                       Epoch hi, bool decompress) {
  auto scanned = archive.ScanRange(lo, hi);
  if (!scanned.ok()) return scanned.status();
  // A time-restricted selection can open with End messages whose Start
  // predates the range; repair those before the well-formedness check.
  return Build(RepairRestrictedStream(scanned.value()), decompress);
}

namespace {

const std::vector<Stay>& EmptyStays() {
  static const std::vector<Stay> kEmpty;
  return kEmpty;
}

const Stay* CoveringStay(const std::vector<Stay>& stays, Epoch epoch) {
  for (const Stay& stay : stays) {
    if (stay.Covers(epoch)) return &stay;
    if (stay.start > epoch) break;  // Sorted by start; no later stay covers.
  }
  return nullptr;
}

}  // namespace

LocationId EventLog::LocationAt(ObjectId object, Epoch epoch) const {
  auto it = locations_.find(object);
  if (it == locations_.end()) return kUnknownLocation;
  const Stay* stay = CoveringStay(it->second, epoch);
  return stay == nullptr ? kUnknownLocation : stay->location;
}

ObjectId EventLog::ContainerAt(ObjectId object, Epoch epoch) const {
  auto it = containments_.find(object);
  if (it == containments_.end()) return kNoObject;
  const Stay* stay = CoveringStay(it->second, epoch);
  return stay == nullptr ? kNoObject : stay->container;
}

ObjectId EventLog::TopLevelContainerAt(ObjectId object, Epoch epoch) const {
  if (!locations_.contains(object) && !containments_.contains(object)) {
    return kNoObject;
  }
  ObjectId current = object;
  // The containment forest is acyclic by construction (containers live in
  // higher packaging layers), but guard against malformed streams anyway.
  for (int depth = 0; depth < kNumPackagingLevels + 1; ++depth) {
    ObjectId parent = ContainerAt(current, epoch);
    if (parent == kNoObject) return current;
    current = parent;
  }
  return current;
}

bool EventLog::IsMissingAt(ObjectId object, Epoch epoch) const {
  auto lo = std::lower_bound(
      missing_.begin(), missing_.end(), object,
      [](const MissingReport& report, ObjectId id) {
        return report.object < id;
      });
  for (auto it = lo; it != missing_.end() && it->object == object; ++it) {
    if (it->since <= epoch && epoch < it->until) return true;
  }
  return false;
}

std::vector<ObjectId> EventLog::ContentsAt(ObjectId container, Epoch epoch,
                                           bool transitive) const {
  std::vector<ObjectId> contents;
  auto it = by_container_.find(container);
  if (it != by_container_.end()) {
    for (const auto& [stay, object] : it->second) {
      if (stay.Covers(epoch)) contents.push_back(object);
    }
  }
  if (transitive) {
    std::vector<ObjectId> direct = contents;
    for (ObjectId child : direct) {
      std::vector<ObjectId> nested = ContentsAt(child, epoch, true);
      contents.insert(contents.end(), nested.begin(), nested.end());
    }
  }
  std::sort(contents.begin(), contents.end());
  contents.erase(std::unique(contents.begin(), contents.end()),
                 contents.end());
  return contents;
}

std::vector<ObjectId> EventLog::ObjectsAt(LocationId location,
                                          Epoch epoch) const {
  std::vector<ObjectId> objects;
  auto it = by_location_.find(location);
  if (it != by_location_.end()) {
    for (const auto& [stay, object] : it->second) {
      if (stay.Covers(epoch)) objects.push_back(object);
    }
  }
  std::sort(objects.begin(), objects.end());
  return objects;
}

const std::vector<Stay>& EventLog::TrajectoryOf(ObjectId object) const {
  auto it = locations_.find(object);
  return it == locations_.end() ? EmptyStays() : it->second;
}

const std::vector<Stay>& EventLog::ContainmentsOf(ObjectId object) const {
  auto it = containments_.find(object);
  return it == containments_.end() ? EmptyStays() : it->second;
}

namespace {

void SortUnique(std::vector<ObjectId>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

}  // namespace

std::vector<ObjectId> EventLog::Objects() const {
  std::vector<ObjectId> out;
  for (const auto& [object, stays] : locations_) out.push_back(object);
  for (const auto& [object, stays] : containments_) out.push_back(object);
  for (const MissingReport& report : missing_) out.push_back(report.object);
  SortUnique(&out);
  return out;
}

std::vector<ObjectId> EventLog::ObjectsEverAt(LocationId location) const {
  std::vector<ObjectId> out;
  auto it = by_location_.find(location);
  if (it != by_location_.end()) {
    for (const auto& [stay, object] : it->second) out.push_back(object);
  }
  SortUnique(&out);
  return out;
}

std::vector<std::pair<ObjectId, ObjectId>> EventLog::ContainmentPairs()
    const {
  std::vector<std::pair<ObjectId, ObjectId>> out;
  for (const auto& [child, stays] : containments_) {
    for (const Stay& stay : stays) out.emplace_back(child, stay.container);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ObjectId> EventLog::EverContainersOf(ObjectId object) const {
  std::vector<ObjectId> out;
  for (const Stay& stay : ContainmentsOf(object)) {
    out.push_back(stay.container);
  }
  SortUnique(&out);
  return out;
}

std::vector<ObjectId> EventLog::EverContentsOf(ObjectId container) const {
  std::vector<ObjectId> out;
  auto it = by_container_.find(container);
  if (it != by_container_.end()) {
    for (const auto& [stay, object] : it->second) out.push_back(object);
  }
  SortUnique(&out);
  return out;
}

}  // namespace spire
