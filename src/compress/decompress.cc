#include "compress/decompress.h"

namespace spire {

Epoch Decompressor::EventEpoch(const Event& event) {
  switch (event.type) {
    case EventType::kEndLocation:
    case EventType::kEndContainment:
      return event.end;
    default:
      return event.start;
  }
}

void Decompressor::Push(const Event& event, EventStream* out) {
  Epoch epoch = EventEpoch(event);
  if (buffered_epoch_ != kNeverEpoch && epoch != buffered_epoch_) {
    FlushEpoch(out);
  }
  buffered_epoch_ = epoch;
  buffered_.push_back(event);
}

void Decompressor::Finish(EventStream* out) {
  if (!buffered_.empty()) FlushEpoch(out);
  buffered_epoch_ = kNeverEpoch;
}

EventStream Decompressor::DecompressAll(const EventStream& level2) {
  Decompressor decompressor;
  EventStream out;
  for (const Event& event : level2) decompressor.Push(event, &out);
  decompressor.Finish(&out);
  return out;
}

void Decompressor::FlushEpoch(EventStream* out) {
  dirty_.clear();
  EventStream staged;
  // Phase 1: containment updates rebuild the hierarchy (Section V-C: "it
  // first processes all containment updates").
  for (const Event& event : buffered_) {
    if (IsContainmentEvent(event.type)) ApplyContainment(event, &staged);
  }
  // Phase 2: location updates, copied down to transitive contents.
  for (const Event& event : buffered_) {
    if (!IsContainmentEvent(event.type)) ApplyLocation(event, &staged);
  }
  // Phase 3: objects whose containment changed inherit their top-level
  // container's current location.
  Reconcile(buffered_epoch_, &staged);
  // Duplicate suppression (Section V-C): containment restructuring can close
  // an object's stay and reopen it at the same location within one epoch;
  // such End/Start pairs carry no information and are cancelled, splicing
  // the original interval back together.
  CancelChurn(&staged);
  out->insert(out->end(), staged.begin(), staged.end());
  buffered_.clear();
}

void Decompressor::CancelChurn(EventStream* staged) {
  std::vector<bool> removed(staged->size(), false);
  for (std::size_t i = 0; i < staged->size(); ++i) {
    const Event& end_event = (*staged)[i];
    if (removed[i] || end_event.type != EventType::kEndLocation) continue;
    for (std::size_t j = i + 1; j < staged->size(); ++j) {
      const Event& later = (*staged)[j];
      if (removed[j] || later.object != end_event.object) continue;
      if (later.type == EventType::kMissing) break;  // Keep a real departure.
      if (later.type == EventType::kStartLocation) {
        if (later.location == end_event.location &&
            later.start == end_event.end) {
          removed[i] = true;
          removed[j] = true;
          // Splice: the stay never ended; restore its original start.
          open_[end_event.object] =
              OpenLocation{end_event.location, end_event.start};
        }
        break;  // Only the immediately following stay can cancel the end.
      }
      if (later.type == EventType::kEndLocation) break;
    }
  }
  EventStream kept;
  kept.reserve(staged->size());
  for (std::size_t i = 0; i < staged->size(); ++i) {
    if (!removed[i]) kept.push_back((*staged)[i]);
  }
  *staged = std::move(kept);
}

void Decompressor::ApplyContainment(const Event& event, EventStream* out) {
  out->push_back(event);
  if (event.type == EventType::kStartContainment) {
    parent_[event.object] = event.container;
    children_[event.container].insert(event.object);
  } else {
    parent_.erase(event.object);
    auto it = children_.find(event.container);
    if (it != children_.end()) it->second.erase(event.object);
  }
  dirty_.push_back(event.object);
}

void Decompressor::ApplyLocation(const Event& event, EventStream* out) {
  switch (event.type) {
    case EventType::kStartLocation: {
      auto it = open_.find(event.object);
      if (it != open_.end() && it->second.location == event.location) {
        return;  // Duplicate: already known to be at this location.
      }
      EmitEndIfOpen(event.object, event.start, out);
      EmitStart(event.object, event.location, event.start, out);
      PropagateStart(event.object, event.location, event.start, out);
      return;
    }
    case EventType::kEndLocation: {
      auto it = open_.find(event.object);
      if (it == open_.end() || it->second.location != event.location) {
        return;  // Duplicate close.
      }
      EmitEndIfOpen(event.object, event.end, out);
      PropagateEnd(event.object, event.location, event.end, out);
      return;
    }
    case EventType::kMissing:
      // Keep the output well-formed: a reconstructed open location event
      // (propagated from a container) must not enclose a Missing singleton.
      EmitEndIfOpen(event.object, event.start, out);
      out->push_back(event);
      return;
    default:
      return;
  }
}

void Decompressor::EmitStart(ObjectId object, LocationId location, Epoch epoch,
                             EventStream* out) {
  open_[object] = OpenLocation{location, epoch};
  out->push_back(Event::StartLocation(object, location, epoch));
}

void Decompressor::EmitEndIfOpen(ObjectId object, Epoch epoch,
                                 EventStream* out) {
  auto it = open_.find(object);
  if (it == open_.end()) return;
  out->push_back(Event::EndLocation(object, it->second.location,
                                    it->second.start, epoch));
  open_.erase(it);
}

void Decompressor::PropagateStart(ObjectId parent, LocationId location,
                                  Epoch epoch, EventStream* out) {
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  for (ObjectId child : it->second) {
    auto open_it = open_.find(child);
    if (open_it == open_.end() || open_it->second.location != location) {
      EmitEndIfOpen(child, epoch, out);
      EmitStart(child, location, epoch, out);
    }
    PropagateStart(child, location, epoch, out);
  }
}

void Decompressor::PropagateEnd(ObjectId parent, LocationId location,
                                Epoch epoch, EventStream* out) {
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  for (ObjectId child : it->second) {
    auto open_it = open_.find(child);
    if (open_it != open_.end() && open_it->second.location == location) {
      EmitEndIfOpen(child, epoch, out);
    }
    PropagateEnd(child, location, epoch, out);
  }
}

void Decompressor::Reconcile(Epoch epoch, EventStream* out) {
  for (ObjectId object : dirty_) {
    auto parent_it = parent_.find(object);
    if (parent_it == parent_.end()) continue;
    // Walk to the top-level container.
    ObjectId root = parent_it->second;
    for (auto it = parent_.find(root); it != parent_.end();
         it = parent_.find(root)) {
      root = it->second;
    }
    auto root_open = open_.find(root);
    if (root_open == open_.end()) continue;  // Container location unknown.
    LocationId location = root_open->second.location;
    auto open_it = open_.find(object);
    if (open_it == open_.end() || open_it->second.location != location) {
      EmitEndIfOpen(object, epoch, out);
      EmitStart(object, location, epoch, out);
      PropagateStart(object, location, epoch, out);
    }
  }
}

}  // namespace spire
