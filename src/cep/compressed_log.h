// Interval access to a level-2 compressed stream without global
// decompression (DESIGN.md §11).
//
// The pattern evaluator needs per-object effective timelines — where was x,
// what contained it, when was it missing — as validity intervals. A level-2
// stream suppresses the location updates of contained objects, so x's
// effective timeline is derivable from x's own events plus those of its
// ever-ancestors (location derivation only ever flows down the containment
// chain: propagation, reconciliation, and churn cancellation all consult
// the parent chain and never a sibling or child). CompressedLog exploits
// that locality: one indexing pass over the stream builds per-object event
// lists and ever-containment adjacency, and a query for x replays just the
// ancestor-closed event cluster of x through the streaming Decompressor —
// the suppressed regions of every unrelated object are never materialized.
// Cluster timelines are memoized, so evaluating a pattern over a pallet
// touches the pallet's cluster once no matter how many items it carries.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "query/event_log.h"

namespace spire::cep {

/// Indexed view over one level-2 (or level-1) stream. Not thread-safe:
/// queries memoize cluster replays.
class CompressedLog {
 public:
  /// Indexes the stream (one pass, no decompression). The stream must be
  /// well-formed; open trailing events are fine.
  static Result<CompressedLog> Build(const EventStream& stream);

  // --- Effective per-object timelines (lazy cluster replay) ---------------

  /// The object's effective location history (explicit + derived stays).
  const std::vector<Stay>& TrajectoryOf(ObjectId object);

  /// The object's direct containment history.
  const std::vector<Stay>& ContainmentsOf(ObjectId object);

  /// The object's missing reports, in time order.
  std::vector<MissingReport> MissingOf(ObjectId object);

  // --- Binding candidate indexes (from the indexing pass, no replay) ------

  /// Every object with any event in the stream, ascending.
  std::vector<ObjectId> AllObjects() const;

  /// A superset of the objects whose effective location ever lies in
  /// `locations`: objects with an explicit stay there plus all their
  /// ever-descendants (derived stays always originate from an ancestor's
  /// explicit stay at the same location). Ascending, deduplicated.
  std::vector<ObjectId> CandidatesEverAt(
      const std::vector<LocationId>& locations) const;

  /// Objects with at least one Missing event, ascending.
  std::vector<ObjectId> EverMissing() const;

  /// Distinct (child, container) pairs over all containment events,
  /// ascending.
  const std::vector<std::pair<ObjectId, ObjectId>>& ContainmentPairs() const {
    return containment_pairs_;
  }

  /// Distinct ever-containers of `object` / ever-contents of `container`.
  std::vector<ObjectId> EverContainersOf(ObjectId object) const;
  std::vector<ObjectId> EverContentsOf(ObjectId container) const;

  // --- Provenance ---------------------------------------------------------

  /// Indices (into the indexed stream) of the events supporting "predicate
  /// held for `object` by epoch `at`": the latest explicit StartLocation at
  /// one of `locations` owned by the object or an ever-ancestor.
  /// Empty if nothing matches (the caller treats that as "no provenance").
  std::vector<std::uint64_t> SupportingLocationEvents(
      ObjectId object, const std::vector<LocationId>& locations,
      Epoch at) const;
  /// The latest StartContainment of `child` inside `container` at or
  /// before `at`, and the latest Missing event of `object` at or before
  /// `at` (empty when absent).
  std::vector<std::uint64_t> SupportingContainmentEvent(ObjectId child,
                                                        ObjectId container,
                                                        Epoch at) const;
  std::vector<std::uint64_t> SupportingMissingEvent(ObjectId object,
                                                    Epoch at) const;

  const EventStream& stream() const { return stream_; }

  // --- Cost accounting (bench + tests) ------------------------------------

  /// Events pushed through cluster replays so far (a measure of how much of
  /// the stream the evaluator actually touched).
  std::size_t replayed_events() const { return replayed_events_; }
  std::size_t clusters_built() const { return clusters_built_; }

 private:
  CompressedLog() = default;

  /// The ever-ancestor closure of `object` (object itself included).
  std::vector<ObjectId> AncestorClosure(ObjectId object) const;

  /// Replays the ancestor-closed cluster of `object` through a fresh
  /// Decompressor and caches the resulting EventLog for every member.
  const EventLog& ClusterLogFor(ObjectId object);

  EventStream stream_;
  /// Per-object indices into stream_, in stream order (= epoch order).
  std::unordered_map<ObjectId, std::vector<std::uint32_t>> events_of_;
  /// Ever-containment adjacency: child -> containers, container -> children.
  std::unordered_map<ObjectId, std::vector<ObjectId>> parents_of_;
  std::unordered_map<ObjectId, std::vector<ObjectId>> children_of_;
  std::vector<std::pair<ObjectId, ObjectId>> containment_pairs_;
  /// Objects with an explicit StartLocation per location.
  std::map<LocationId, std::vector<ObjectId>> explicit_at_;
  std::vector<ObjectId> ever_missing_;

  std::unordered_map<ObjectId, std::shared_ptr<const EventLog>> cluster_of_;
  std::size_t replayed_events_ = 0;
  std::size_t clusters_built_ = 0;
  static const std::vector<Stay> kNoStays;
};

}  // namespace spire::cep
