#include "query/block_cache.h"

#include <atomic>

#include "obs/registry.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Gauge* cache_bytes;
};

const Instruments* GetInstruments() {
  if (!spire::obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("query", "cache_hits"),
      registry.GetCounter("query", "cache_misses"),
      registry.GetCounter("query", "cache_evictions"),
      registry.GetGauge("query", "cache_bytes"),
  };
  return &instruments;
}

std::uint64_t KeyOf(std::uint64_t segment_tag, std::uint32_t block_index) {
  return (segment_tag << 32) | block_index;
}

std::uint64_t CostOf(const EventStream& block) {
  return block.size() * sizeof(Event) + BlockCache::kEntryOverheadBytes;
}

}  // namespace

BlockCache::BlockCache(std::uint64_t capacity_bytes, std::size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  if (num_shards == 0) num_shards = 1;
  shard_capacity_ = capacity_bytes / num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BlockCache::Shard& BlockCache::ShardFor(std::uint64_t key) {
  // Fibonacci hashing spreads both the tag and block-index bits, so
  // consecutive blocks of one segment land on different shards.
  const std::uint64_t mixed = key * 0x9E3779B97F4A7C15ull;
  return *shards_[(mixed >> 32) % shards_.size()];
}

BlockCache::BlockPtr BlockCache::Get(std::uint64_t segment_tag,
                                     std::uint32_t block_index) {
  const std::uint64_t key = KeyOf(segment_tag, block_index);
  Shard& shard = ShardFor(key);
  const Instruments* instruments = GetInstruments();
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lookups;
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    if (instruments != nullptr) instruments->cache_misses->Add(1);
    return nullptr;
  }
  ++shard.hits;
  if (instruments != nullptr) instruments->cache_hits->Add(1);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.block;
}

void BlockCache::Put(std::uint64_t segment_tag, std::uint32_t block_index,
                     BlockPtr block) {
  if (block == nullptr) return;
  const std::uint64_t key = KeyOf(segment_tag, block_index);
  const std::uint64_t cost = CostOf(*block);
  Shard& shard = ShardFor(key);
  const Instruments* instruments = GetInstruments();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.contains(key)) return;  // Lost a same-key miss race.
  shard.lru.push_front(key);
  shard.entries[key] = Entry{std::move(block), cost, shard.lru.begin()};
  shard.bytes += cost;
  if (instruments != nullptr) {
    instruments->cache_bytes->Add(static_cast<std::int64_t>(cost));
  }
  // Evict from the cold end, but never the entry just inserted.
  while (shard.bytes > shard_capacity_ && shard.entries.size() > 1) {
    const std::uint64_t victim = shard.lru.back();
    auto victim_it = shard.entries.find(victim);
    shard.bytes -= victim_it->second.cost;
    if (instruments != nullptr) {
      instruments->cache_bytes->Add(
          -static_cast<std::int64_t>(victim_it->second.cost));
      instruments->cache_evictions->Add(1);
    }
    shard.entries.erase(victim_it);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

BlockCache::Stats BlockCache::GetStats() const {
  Stats stats;
  stats.capacity_bytes = capacity_bytes_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.lookups += shard->lookups;
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.bytes += shard->bytes;
  }
  return stats;
}

std::uint64_t BlockCache::NextSegmentTag() {
  static std::atomic<std::uint64_t> next_tag{1};
  return next_tag.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace spire
