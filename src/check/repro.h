// Replayable repro files for the differential checking harness.
//
// A repro file is a plain `key = value` text file (common/config.h syntax)
// holding every SimConfig field plus the shrink state (max_epochs and the
// excluded-tag list) and, as comments, the failing oracle and its detail.
// `spire_fuzz --replay <file>` reloads the case and re-runs the battery.
#pragma once

#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/trace_gen.h"
#include "common/status.h"

namespace spire {

/// Renders a case (and, when non-null, its failure) as repro-file lines.
std::vector<std::string> SerializeRepro(const FuzzCase& fuzz_case,
                                        const OracleFailure* failure);

/// Parses repro-file lines back into a case.
Result<FuzzCase> ParseRepro(const std::vector<std::string>& lines);

/// Writes/reads a repro file on disk.
Status WriteReproFile(const std::string& path, const FuzzCase& fuzz_case,
                      const OracleFailure* failure);
Result<FuzzCase> LoadReproFile(const std::string& path);

}  // namespace spire
