// Tests for the persistent block-compressed event archive (src/store):
// varint/CRC primitives, the column-wise block codec, writer/reader round
// trips over hand-built and simulated streams, the three access paths,
// torn-tail crash recovery, and index-sidecar staleness handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/epc.h"
#include "compress/well_formed.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"
#include "store/block.h"
#include "store/crc32.h"
#include "store/segment.h"
#include "store/varint.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kItem2 = Obj(PackagingLevel::kItem, 2);
const ObjectId kCase = Obj(PackagingLevel::kCase, 3);

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveArchive(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
}

/// A canonical mixed stream: every message kind, several objects, epochs
/// near-sorted the way the pipeline emits them.
EventStream SampleStream() {
  return {
      Event::StartLocation(kItem, 4, 10),
      Event::StartLocation(kCase, 4, 10),
      Event::StartContainment(kItem, kCase, 12),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
      Event::StartLocation(kItem, 7, 25),
      Event::StartLocation(kItem2, 7, 26),
      Event::EndContainment(kItem, kCase, 12, 40),
      Event::EndLocation(kItem, 7, 25, 50),
      Event::EndLocation(kItem2, 7, 26, 55),
      Event::EndLocation(kCase, 4, 10, 60),
  };
}

/// `rounds` copies of the sample pattern shifted in time, to fill many
/// blocks.
EventStream LongStream(int rounds) {
  EventStream stream;
  for (int round = 0; round < rounds; ++round) {
    const Epoch base = 100 * round;
    for (Event event : SampleStream()) {
      if (event.start != kNeverEpoch && event.start != kInfiniteEpoch) {
        event.start += base;
      }
      if (event.end != kInfiniteEpoch) event.end += base;
      stream.push_back(event);
    }
  }
  return stream;
}

EventStream FilterByPrimary(const EventStream& stream, Epoch lo, Epoch hi) {
  EventStream filtered;
  for (const Event& event : stream) {
    const Epoch primary = PrimaryEpoch(event);
    if (lo <= primary && primary <= hi) filtered.push_back(event);
  }
  return filtered;
}

// ------------------------------------------------------------- primitives --

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 62,
                                  ~0ull};
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t value : values) PutVarint64(value, &bytes);
  std::size_t offset = 0;
  for (std::uint64_t value : values) {
    auto decoded = GetVarint64(bytes, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), value);
  }
  EXPECT_EQ(offset, bytes.size());
}

TEST(VarintTest, RejectsTruncation) {
  std::vector<std::uint8_t> bytes;
  PutVarint64(1ull << 40, &bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    std::size_t offset = 0;
    EXPECT_FALSE(GetVarint64(truncated, &offset).ok());
  }
}

TEST(VarintTest, ZigzagRoundTrips) {
  const std::int64_t values[] = {0, -1, 1, -2, 1000, -1000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t value : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(value)), value);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32Test, SeedChainsAcrossCalls) {
  EXPECT_EQ(Crc32("56789", 5, Crc32("1234", 4)), Crc32("123456789", 9));
}

// ------------------------------------------------------------ block codec --

TEST(BlockCodecTest, RoundTripsMixedEvents) {
  const EventStream stream = SampleStream();
  auto encoded = EncodeBlock(stream, 0, stream.size());
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().count, stream.size());
  EXPECT_EQ(encoded.value().min_epoch, 10);
  EXPECT_EQ(encoded.value().max_epoch, 60);
  // Far below the 26-byte flat record.
  EXPECT_LT(encoded.value().payload.size(), stream.size() * kEventWireBytes / 2);

  EventStream decoded;
  ASSERT_TRUE(
      DecodeBlock(encoded.value().payload, encoded.value().count, &decoded)
          .ok());
  EXPECT_EQ(decoded, stream);
}

TEST(BlockCodecTest, RejectsNonCanonicalEvents) {
  Event closed_start = Event::StartLocation(kItem, 4, 10);
  closed_start.end = 20;
  Event negative = Event::StartLocation(kItem, 4, -3);
  Event inverted_end = Event::EndLocation(kItem, 4, 30, 20);
  Event fat_missing = Event::Missing(kItem, 4, 10);
  fat_missing.end = 12;
  for (const Event& event : {closed_start, negative, inverted_end,
                             fat_missing}) {
    EXPECT_FALSE(ValidateArchivable(event).ok()) << event.ToString();
    EXPECT_FALSE(EncodeBlock({event}, 0, 1).ok()) << event.ToString();
  }
}

TEST(BlockCodecTest, DecodeRejectsCorruptionAtEveryOffset) {
  const EventStream stream = SampleStream();
  auto encoded = EncodeBlock(stream, 0, stream.size());
  ASSERT_TRUE(encoded.ok());
  const std::vector<std::uint8_t>& payload = encoded.value().payload;
  // Flipping any byte must fail, or decode the full event count — never
  // crash, never silently drop records.
  for (std::size_t offset = 0; offset < payload.size(); ++offset) {
    std::vector<std::uint8_t> flipped = payload;
    flipped[offset] ^= 0xff;
    EventStream decoded;
    Status status = DecodeBlock(flipped, encoded.value().count, &decoded);
    if (status.ok()) {
      EXPECT_EQ(decoded.size(), stream.size()) << "offset " << offset;
    } else {
      EXPECT_FALSE(status.message().empty()) << "offset " << offset;
    }
  }
  // Any truncation must fail.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<std::uint8_t> truncated(payload.begin(),
                                        payload.begin() + cut);
    EventStream decoded;
    EXPECT_FALSE(
        DecodeBlock(truncated, encoded.value().count, &decoded).ok())
        << "cut " << cut;
  }
}

// --------------------------------------------------------- writer/reader --

TEST(ArchiveTest, RoundTripsAcrossManyBlocks) {
  const std::string path = TempPath("roundtrip.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);

  ArchiveOptions options;
  options.block_events = 32;  // Force many blocks.
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_GT(writer.value()->num_blocks(), 10u);
  EXPECT_EQ(writer.value()->events_written(), stream.size());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().index_rebuilt());
  EXPECT_EQ(reader.value().num_events(), stream.size());
  auto scanned = reader.value().ScanAll();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value(), stream);
}

TEST(ArchiveTest, TimeRangeScanEqualsFilteredFullDecode) {
  const std::string path = TempPath("range.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (auto [lo, hi] : {std::pair<Epoch, Epoch>{0, 99},
                        {150, 430},
                        {1000, 2000},
                        {3990, 100000},
                        {700, 700}}) {
    auto ranged = reader.value().ScanRange(lo, hi);
    ASSERT_TRUE(ranged.ok());
    EXPECT_EQ(ranged.value(), FilterByPrimary(stream, lo, hi))
        << "[" << lo << ", " << hi << "]";
  }
  // A narrow window must skip most blocks.
  EXPECT_LT(reader.value().BlocksInRange(150, 430),
            reader.value().num_blocks() / 2);
  EXPECT_EQ(reader.value().BlocksInRange(1 << 20, 2 << 20), 0u);
}

TEST(ArchiveTest, PerObjectScanUsesPostings) {
  const std::string path = TempPath("object.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (ObjectId object : {kItem, kItem2, kCase}) {
    auto scanned = reader.value().ScanObject(object);
    ASSERT_TRUE(scanned.ok());
    EventStream expected;
    for (const Event& event : stream) {
      if (event.object == object) expected.push_back(event);
    }
    EXPECT_EQ(scanned.value(), expected);
    EXPECT_LE(reader.value().BlocksForObject(object),
              reader.value().num_blocks());
  }
  EXPECT_TRUE(reader.value()
                  .ScanObject(Obj(PackagingLevel::kItem, 999))
                  .value()
                  .empty());
}

TEST(ArchiveTest, ReopenAppendsAfterClose) {
  const std::string path = TempPath("reopen.sparc");
  RemoveArchive(path);
  const EventStream first = LongStream(10);
  const EventStream second = LongStream(20);

  ArchiveOptions options;
  options.block_events = 32;
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(first).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.value()->recovery().recovered_events, first.size());
    EXPECT_EQ(writer.value()->recovery().truncated_bytes, 0u);
    ASSERT_TRUE(writer.value()->Append(second).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EventStream expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(reader.value().ScanAll().value(), expected);
}

TEST(ArchiveTest, TornTailRecoveryLosesAtMostLastBlock) {
  const std::string path = TempPath("torn.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  std::uint64_t full_bytes = 0;
  std::size_t full_blocks = 0;
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
    full_bytes = writer.value()->segment_bytes();
    full_blocks = writer.value()->num_blocks();
  }
  // Tear the file mid-way through the last block.
  std::filesystem::resize_file(path, full_bytes - 20);

  auto recovered = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(recovered.ok());
  ArchiveWriter& w = *recovered.value();
  EXPECT_EQ(w.num_blocks(), full_blocks - 1);
  EXPECT_GT(w.recovery().truncated_bytes, 0u);
  // At most one block of events was lost.
  EXPECT_GE(w.recovery().recovered_events,
            stream.size() - options.block_events);

  // Appending after recovery works, and the result validates end to end.
  const std::size_t lost = stream.size() -
                           static_cast<std::size_t>(w.events_written());
  EventStream tail(stream.end() - static_cast<std::ptrdiff_t>(lost),
                   stream.end());
  ASSERT_TRUE(w.Append(tail).ok());
  ASSERT_TRUE(w.Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().index_rebuilt());
  EXPECT_EQ(reader.value().ScanAll().value(), stream);
}

TEST(ArchiveTest, ReaderRebuildsWhenIndexStaleOrMissing) {
  const std::string path = TempPath("stale.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(10);
  ArchiveOptions options;
  options.block_events = 32;
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    // Append without Close: sealed blocks land, the sidecar goes stale —
    // exactly the crash-before-Close shape.
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Flush().ok());
  }
  auto stale = ArchiveReader::Open(path);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value().index_rebuilt());
  EXPECT_EQ(stale.value().num_events(), 2 * stream.size());

  std::filesystem::remove(IndexPathFor(path));
  auto missing = ArchiveReader::Open(path);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing.value().index_rebuilt());
  EventStream expected = stream;
  expected.insert(expected.end(), stream.begin(), stream.end());
  EXPECT_EQ(missing.value().ScanAll().value(), expected);
}

TEST(ArchiveTest, CorruptBlockPayloadIsDetected) {
  const std::string path = TempPath("bitrot.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  const BlockMeta middle =
      writer.value()->num_blocks() > 2
          ? ArchiveReader::Open(path).value().blocks()[2]
          : BlockMeta{};
  ASSERT_GT(middle.offset, 0u);

  // Flip one payload byte of a middle block.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(middle.offset) + kBlockHeaderBytes);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(middle.offset) + kBlockHeaderBytes);
    byte = static_cast<char>(byte ^ 0xff);
    file.write(&byte, 1);
  }
  // The sidecar still matches the file size, so Open succeeds; the scan
  // hits the checksum.
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto scanned = reader.value().ScanAll();
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kCorruption);

  // Writer recovery truncates at the corrupt block.
  auto recovered = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value()->num_blocks(), 2u);
  EXPECT_GT(recovered.value()->recovery().truncated_bytes, 0u);
}

TEST(ArchiveTest, RejectsGarbageFiles) {
  EXPECT_FALSE(ArchiveReader::Open("/nonexistent/nowhere.sparc").ok());
  const std::string path = TempPath("garbage.sparc");
  RemoveArchive(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an archive";
  }
  EXPECT_FALSE(ArchiveReader::Open(path).ok());
  EXPECT_FALSE(ArchiveWriter::Open(path).ok());
}

TEST(ArchiveTest, RepairedRestrictedStreamIsWellFormed) {
  const std::string path = TempPath("repair.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto ranged = reader.value().ScanRange(135, 460);
  ASSERT_TRUE(ranged.ok());
  // The raw selection opens with unmatched End messages...
  EXPECT_FALSE(
      ValidateWellFormed(ranged.value(), /*allow_open_at_end=*/true).ok());
  // ...and the repair re-materializes their Starts.
  EXPECT_TRUE(ValidateWellFormed(RepairRestrictedStream(ranged.value()),
                                 /*allow_open_at_end=*/true)
                  .ok());
}

// -------------------------------------------------------------- end to end --

/// Runs the pipeline over a simulated trace with the archive attached as a
/// sink, returning the in-memory output stream.
EventStream RunPipelineWithArchive(const SimConfig& config,
                                   CompressionLevel level,
                                   ArchiveWriter* archive) {
  auto sim = WarehouseSimulator::Create(config);
  EXPECT_TRUE(sim.ok());
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = level;
  SpirePipeline pipeline(&s.registry(), options);
  pipeline.SetArchiveSink(archive);
  EventStream events;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &events);
  }
  pipeline.Finish(s.current_epoch() + 1, &events);
  EXPECT_TRUE(pipeline.archive_status().ok())
      << pipeline.archive_status().ToString();
  return events;
}

TEST(ArchiveEndToEndTest, SimulatorScenariosRoundTripLossless) {
  SimConfig small;
  small.duration_epochs = 900;
  small.pallet_interval = 300;
  small.min_cases_per_pallet = 2;
  small.max_cases_per_pallet = 3;
  small.items_per_case = 4;
  small.mean_shelf_stay = 300;
  small.shelf_period = 20;
  small.read_rate = 0.9;

  SimConfig lossy = small;
  lossy.read_rate = 0.6;

  int scenario = 0;
  for (const SimConfig& config : {small, lossy}) {
    for (CompressionLevel level :
         {CompressionLevel::kLevel1, CompressionLevel::kLevel2}) {
      const std::string path =
          TempPath("e2e_" + std::to_string(scenario++) + ".sparc");
      RemoveArchive(path);
      ArchiveOptions options;
      options.block_events = 256;
      auto writer = ArchiveWriter::Open(path, options);
      ASSERT_TRUE(writer.ok());
      EventStream events =
          RunPipelineWithArchive(config, level, writer.value().get());
      ASSERT_TRUE(writer.value()->Close().ok());

      auto reader = ArchiveReader::Open(path);
      ASSERT_TRUE(reader.ok());
      auto scanned = reader.value().ScanAll();
      ASSERT_TRUE(scanned.ok());
      EXPECT_EQ(scanned.value(), events);  // Lossless round trip.

      // Time-range scan == filtered full decode, on a middle window.
      const Epoch lo = 300;
      const Epoch hi = 500;
      auto ranged = reader.value().ScanRange(lo, hi);
      ASSERT_TRUE(ranged.ok());
      EXPECT_EQ(ranged.value(), FilterByPrimary(events, lo, hi));
    }
  }
}

TEST(ArchiveEndToEndTest, ArchiveIsSmallerThanFlatRecords) {
  SimConfig config;
  config.duration_epochs = 900;
  config.pallet_interval = 300;
  config.items_per_case = 4;
  config.mean_shelf_stay = 300;
  config.shelf_period = 20;
  config.read_rate = 0.9;

  const std::string path = TempPath("size.sparc");
  RemoveArchive(path);
  auto writer = ArchiveWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  EventStream events = RunPipelineWithArchive(
      config, CompressionLevel::kLevel2, writer.value().get());
  ASSERT_TRUE(writer.value()->Close().ok());
  ASSERT_GT(events.size(), 100u);

  // The acceptance target: at most half of the flat 26-byte records.
  EXPECT_LE(writer.value()->segment_bytes(),
            events.size() * kEventWireBytes / 2);
}

}  // namespace
}  // namespace spire
