// Wire-format size accounting for compression ratios.
//
// The paper reports compression ratio = (bytes of the compressed event
// stream) / (bytes of the raw RFID reading stream). We fix a concrete byte
// layout for both streams so the ratio is well-defined and reproducible.
#pragma once

#include <cstddef>

namespace spire {

/// A raw RFID reading on the wire: 12-byte EPC (96-bit tag), 2-byte reader
/// id, 2-byte epoch-relative timestamp.
inline constexpr std::size_t kReadingWireBytes = 16;

/// An output event message on the wire, packed:
/// type(1) + object EPC(12) + target(8: container EPC prefix or padded
/// location id) + timestamp(4) + flags(1) = 26 bytes. Every message
/// (Start*/End*/Missing) is charged one full record.
inline constexpr std::size_t kEventWireBytes = 26;

}  // namespace spire
