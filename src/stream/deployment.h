// Text serialization of a reader deployment.
//
// A trace file (stream/trace_io.h) carries only readings; to interpret it
// offline the consumer also needs the deployment: which readers exist,
// where they are, their type, and their reading period (the "system
// configuration file" of Section IV-D). The format is line-oriented:
//
//   # comments and blank lines are ignored
//   location <name>
//   reader <name> <location-name> <type> <period-epochs>
//   patrol <reader-name> <dwell-epochs> <location-name> [<location-name> ...]
//
// with <type> one of the ReaderType names (entry_door, receiving_belt,
// shelf, packaging, outgoing_belt, exit_door, mobile). Locations are
// registered in first-appearance order (explicit `location` lines let a
// patrol visit places no static reader covers); readers in file order
// (their ids are dense).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/reader.h"

namespace spire {

/// Parses deployment lines into a registry.
Result<ReaderRegistry> ParseDeployment(const std::vector<std::string>& lines);

/// Serializes a registry into deployment lines (parseable back).
std::vector<std::string> SerializeDeployment(const ReaderRegistry& registry);

}  // namespace spire
