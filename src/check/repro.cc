#include "check/repro.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.h"

namespace spire {

namespace {

std::string U64Line(const char* key, std::uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s = %" PRIu64, key, value);
  return buffer;
}

std::string I64Line(const char* key, std::int64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s = %" PRId64, key, value);
  return buffer;
}

}  // namespace

std::vector<std::string> SerializeRepro(const FuzzCase& fuzz_case,
                                        const OracleFailure* failure) {
  std::vector<std::string> lines;
  lines.push_back("# spire_fuzz repro — replay with: spire_fuzz --replay "
                  "<this file>");
  if (failure != nullptr) {
    lines.push_back("# oracle: " + failure->oracle);
    std::istringstream detail(failure->detail);
    std::string detail_line;
    while (std::getline(detail, detail_line)) {
      lines.push_back("#   " + detail_line);
    }
  }
  const SimConfig& sim = fuzz_case.sim;
  lines.push_back(U64Line("seed", sim.seed));
  lines.push_back(I64Line("duration_epochs", sim.duration_epochs));
  lines.push_back(I64Line("pallet_interval", sim.pallet_interval));
  lines.push_back(I64Line("min_cases_per_pallet", sim.min_cases_per_pallet));
  lines.push_back(I64Line("max_cases_per_pallet", sim.max_cases_per_pallet));
  lines.push_back(I64Line("items_per_case", sim.items_per_case));
  {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "read_rate = %.17g", sim.read_rate);
    lines.push_back(buffer);
  }
  lines.push_back(
      I64Line("nonshelf_ticks_per_epoch", sim.nonshelf_ticks_per_epoch));
  lines.push_back(I64Line("shelf_period", sim.shelf_period));
  lines.push_back(I64Line("num_shelves", sim.num_shelves));
  lines.push_back(I64Line("mean_shelf_stay", sim.mean_shelf_stay));
  lines.push_back(I64Line("entry_dwell", sim.entry_dwell));
  lines.push_back(I64Line("belt_dwell", sim.belt_dwell));
  lines.push_back(I64Line("packaging_dwell", sim.packaging_dwell));
  lines.push_back(I64Line("exit_dwell", sim.exit_dwell));
  lines.push_back(I64Line("packaging_timeout", sim.packaging_timeout));
  lines.push_back(I64Line("transit_time", sim.transit_time));
  lines.push_back(I64Line("theft_interval", sim.theft_interval));
  lines.push_back(std::string("patrol_reader = ") +
                  (sim.patrol_reader ? "true" : "false"));
  lines.push_back(I64Line("patrol_dwell", sim.patrol_dwell));
  lines.push_back(I64Line("transfer_sites", sim.transfer_sites));
  lines.push_back(I64Line("transfer_interval", sim.transfer_interval));
  lines.push_back(I64Line("transfer_dwell", sim.transfer_dwell));
  lines.push_back(I64Line("transfer_transit", sim.transfer_transit));
  lines.push_back(I64Line("transfer_round_trips", sim.transfer_round_trips));
  lines.push_back(I64Line("transfer_cases", sim.transfer_cases));
  lines.push_back(I64Line("transfer_items", sim.transfer_items));
  lines.push_back(I64Line("max_epochs", fuzz_case.max_epochs));
  if (!fuzz_case.excluded_tags.empty()) {
    std::ostringstream tags;
    tags << "exclude_tags = ";
    for (std::size_t i = 0; i < fuzz_case.excluded_tags.size(); ++i) {
      if (i > 0) tags << ",";
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "0x%" PRIx64,
                    fuzz_case.excluded_tags[i]);
      tags << buffer;
    }
    lines.push_back(tags.str());
  }
  return lines;
}

Result<FuzzCase> ParseRepro(const std::vector<std::string>& lines) {
  auto config = Config::FromLines(lines);
  if (!config.ok()) return config.status();
  FuzzCase out;
  auto sim = SimConfig::FromConfig(config.value(), SimConfig());
  if (!sim.ok()) return sim.status();
  out.sim = sim.value();
  auto max_epochs = config.value().GetInt("max_epochs", 0);
  if (!max_epochs.ok()) return max_epochs.status();
  out.max_epochs = max_epochs.value();
  auto tags = config.value().GetString("exclude_tags", "");
  if (!tags.ok()) return tags.status();
  std::istringstream list(tags.value());
  std::string token;
  while (std::getline(list, token, ',')) {
    if (token.empty()) continue;
    char* end = nullptr;
    const std::uint64_t id = std::strtoull(token.c_str(), &end, 0);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad exclude_tags entry: " + token);
    }
    out.excluded_tags.push_back(id);
  }
  return out;
}

Status WriteReproFile(const std::string& path, const FuzzCase& fuzz_case,
                      const OracleFailure* failure) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  for (const std::string& line : SerializeRepro(fuzz_case, failure)) {
    out << line << "\n";
  }
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Result<FuzzCase> LoadReproFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return ParseRepro(lines);
}

}  // namespace spire
