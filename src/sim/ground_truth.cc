#include "sim/ground_truth.h"

#include <algorithm>

namespace spire {

void GroundTruthRecorder::Observe(const PhysicalWorld& world, Epoch epoch) {
  std::vector<ObjectId> ids;
  ids.reserve(world.size());
  for (const auto& [id, state] : world.objects()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  // Retire objects that vanished since the last observation.
  std::vector<ObjectId> gone;
  for (ObjectId id : known_) {
    if (!world.Contains(id)) gone.push_back(id);
  }
  for (ObjectId id : gone) Retire(id, epoch);
  for (ObjectId id : ids) ReportOne(world, id, epoch);
}

void GroundTruthRecorder::ObserveTouched(const PhysicalWorld& world,
                                         const std::vector<ObjectId>& touched,
                                         Epoch epoch) {
  std::vector<ObjectId> ids(touched);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  // Retire vanished objects first, then report the alive ones — the same
  // order as the full-diff Observe(), so both produce identical streams.
  for (ObjectId id : ids) {
    if (!world.Contains(id)) Retire(id, epoch);
  }
  for (ObjectId id : ids) {
    if (world.Contains(id)) ReportOne(world, id, epoch);
  }
}

void GroundTruthRecorder::Retire(ObjectId id, Epoch epoch) {
  compressor_.Retire(id, epoch, &events_);
  known_.erase(id);
}

void GroundTruthRecorder::Finish(Epoch epoch) {
  compressor_.Finish(epoch, &events_);
  known_.clear();
}

void GroundTruthRecorder::ReportOne(const PhysicalWorld& world, ObjectId id,
                                    Epoch epoch) {
  const ObjectState* state = world.Find(id);
  if (state == nullptr) return;
  ObjectStateEstimate estimate;
  estimate.object = id;
  estimate.location = state->location;
  estimate.container = state->parent;
  // In the ground truth only improper disappearances are "missing"; an
  // ordinary transit between locations is a plain End/Start gap. Objects
  // inside a stolen container vanished with it.
  estimate.missing = state->stolen;
  for (ObjectId ancestor = state->parent;
       ancestor != kNoObject && !estimate.missing;) {
    const ObjectState* ancestor_state = world.Find(ancestor);
    if (ancestor_state == nullptr) break;
    estimate.missing = ancestor_state->stolen;
    ancestor = ancestor_state->parent;
  }
  compressor_.Report(estimate, epoch, &events_);
  known_.insert(id);
}

}  // namespace spire
