// Cross-site truck-transfer traces (the `truck_transfer` scenario).
//
// The sequel paper (Cao et al., "Distributed Inference and Query Processing
// for RFID Tracking and Monitoring") extends SPIRE's single-deployment
// model with objects that physically move between deployments. This module
// generates that workload: `transfer_sites` independent warehouses (one
// WarehouseSimulator each, tag spaces made disjoint by planting the site
// index in the EPC company prefix) plus a fleet of trucks. Each truck
// carries a closed pallet group (pallet -> cases -> items) and shuttles
// between sites: it is read at the origin's outgoing belt for
// `transfer_dwell` epochs, departs, spends `transfer_transit` epochs
// unreadable, and is read at the destination's entry door for another
// dwell window. Every leg is recorded as a TransferHop — the transfer
// schedule the distributed runtime (src/dist) turns into object handoffs.
#pragma once

#include <string>
#include <vector>

#include "common/epc.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/layout.h"
#include "sim/sim_config.h"
#include "stream/reader.h"
#include "stream/reading.h"

namespace spire {

/// Site index planted into truck cargo tags. Never a real site
/// (SimConfig::Validate caps transfer_sites at 16), so truck tags collide
/// with no site's organic tag space.
inline constexpr int kTransferTagSite = kEpcMaxSites - 1;

/// One truck leg: a closed object group leaving `from_site`'s outgoing
/// belt after epoch `depart_epoch` and first readable at `to_site`'s entry
/// door at `arrive_epoch` (strictly later; the distributed feed protocol
/// relies on that to forward the handoff ahead of the arrival epoch).
/// `objects` is in leaf-up order — items, then cases, then the pallet — so
/// retiring them in order never leaves a container with live children.
struct TransferHop {
  int from_site = 0;
  int to_site = 0;
  Epoch depart_epoch = kNeverEpoch;
  Epoch arrive_epoch = kNeverEpoch;
  std::vector<ObjectId> objects;
};

/// One reader deployment of a multi-site trace: its own layout (registry
/// with site-local reader/location ids) and per-epoch readings. Tag ids
/// are global — the site index is already planted in the company prefix.
struct SiteTrace {
  std::string name;
  WarehouseLayout layout;
  std::vector<EpochReadings> epochs;
  std::size_t total_readings = 0;
};

/// A multi-site trace plus its transfer schedule. All sites share the
/// epoch axis [0, num_epochs); hops are in truck-major, then leg order.
struct TransferTrace {
  std::vector<SiteTrace> sites;
  std::vector<TransferHop> hops;
  Epoch num_epochs = 0;
};

/// Generates the truck_transfer scenario from `config` (which must have
/// transfer_sites >= 2). Site i runs a WarehouseSimulator with a
/// site-derived seed; truck readings are overlaid on the organic streams.
Result<TransferTrace> BuildTransferTrace(const SimConfig& config);

/// A multi-site trace collapsed into one merged deployment: every site's
/// readers and locations re-registered with cumulative id offsets, and all
/// readings on one stream. A single pipeline over this view sees the whole
/// world, which is how the existing single-deployment oracles fuzz
/// cross-site movement.
struct MergedDeployment {
  ReaderRegistry registry;
  std::vector<EpochReadings> epochs;
  /// Site 0's entry door (offset 0) for warm-up-area checks.
  LocationId entry_door = kUnknownLocation;
  std::size_t total_readings = 0;
};

Result<MergedDeployment> MergeToSingleDeployment(const TransferTrace& trace);

}  // namespace spire
