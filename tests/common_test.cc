// Unit tests for src/common: status/result, shift register, EPC codec,
// deterministic RNG, config parsing, and thread-safe logging.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bitvector.h"
#include "common/config.h"
#include "common/epc.h"
#include "common/log.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "common/wire.h"

namespace spire {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad beta");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad beta");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad beta");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),   Status::OutOfRange("x").code(),
      Status::Corruption("x").code(),      Status::NotSupported("x").code(),
      Status::Internal("x").code(),
  };
  EXPECT_EQ(codes.size(), 7u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// --------------------------------------------------------- ShiftRegister --

TEST(ShiftRegisterTest, StartsEmpty) {
  ShiftRegister reg(8);
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.size(), 0);
  EXPECT_EQ(reg.capacity(), 8);
  EXPECT_EQ(reg.PopCount(), 0);
}

TEST(ShiftRegisterTest, NewestIsIndexZero) {
  ShiftRegister reg(8);
  reg.Push(true);
  reg.Push(false);
  reg.Push(true);
  EXPECT_EQ(reg.size(), 3);
  EXPECT_TRUE(reg.Get(0));   // Most recent.
  EXPECT_FALSE(reg.Get(1));
  EXPECT_TRUE(reg.Get(2));   // Oldest.
  EXPECT_EQ(reg.PopCount(), 2);
}

TEST(ShiftRegisterTest, OldObservationsFallOffAtCapacity) {
  ShiftRegister reg(4);
  reg.Push(true);                          // Will fall off.
  for (int i = 0; i < 4; ++i) reg.Push(false);
  EXPECT_EQ(reg.size(), 4);
  EXPECT_EQ(reg.PopCount(), 0);
}

TEST(ShiftRegisterTest, SetNewestAmendsWithoutShift) {
  ShiftRegister reg(4);
  reg.Push(false);
  reg.SetNewest(true);
  EXPECT_EQ(reg.size(), 1);
  EXPECT_TRUE(reg.Get(0));
  reg.SetNewest(false);
  EXPECT_FALSE(reg.Get(0));
}

TEST(ShiftRegisterTest, PopCountMasksBeyondSize) {
  ShiftRegister reg(8);
  reg.Push(true);
  EXPECT_EQ(reg.PopCount(), 1);
  reg.Push(true);
  EXPECT_EQ(reg.PopCount(), 2);
}

TEST(ShiftRegisterTest, FullCapacity64) {
  ShiftRegister reg(64);
  for (int i = 0; i < 100; ++i) reg.Push(true);
  EXPECT_EQ(reg.size(), 64);
  EXPECT_EQ(reg.PopCount(), 64);
}

TEST(ShiftRegisterTest, ClearResets) {
  ShiftRegister reg(8);
  reg.Push(true);
  reg.Clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.PopCount(), 0);
}

// ----------------------------------------------------------------- EPC ----

TEST(EpcTest, RoundTripsAllFields) {
  EpcFields fields;
  fields.level = PackagingLevel::kCase;
  fields.company_prefix = 123456;
  fields.item_reference = 654321;
  fields.serial = 1048575;
  auto encoded = EncodeEpc(fields);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(DecodeEpc(encoded.value()), fields);
  EXPECT_EQ(EpcLevel(encoded.value()), PackagingLevel::kCase);
  EXPECT_EQ(EpcLayer(encoded.value()), 1);
}

TEST(EpcTest, LayersMatchLevels) {
  for (int level = 0; level < kNumPackagingLevels; ++level) {
    EpcFields fields;
    fields.level = static_cast<PackagingLevel>(level);
    fields.serial = 7;
    auto id = EncodeEpc(fields);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(EpcLayer(id.value()), level);
  }
}

TEST(EpcTest, RejectsOverflowingFields) {
  EpcFields fields;
  fields.company_prefix = 1u << 20;  // 21 bits: too wide.
  EXPECT_FALSE(EncodeEpc(fields).ok());
  fields = EpcFields{};
  fields.item_reference = 1u << 20;
  EXPECT_FALSE(EncodeEpc(fields).ok());
  fields = EpcFields{};
  fields.serial = 1u << 21;
  EXPECT_FALSE(EncodeEpc(fields).ok());
}

TEST(EpcTest, DistinctFieldsYieldDistinctIds) {
  std::set<ObjectId> ids;
  for (std::uint32_t serial = 0; serial < 100; ++serial) {
    for (int level = 0; level < kNumPackagingLevels; ++level) {
      EpcFields fields;
      fields.level = static_cast<PackagingLevel>(level);
      fields.serial = serial;
      ids.insert(EncodeEpcUnchecked(fields));
    }
  }
  EXPECT_EQ(ids.size(), 300u);
}

TEST(EpcTest, ToStringNamesTheLevel) {
  EpcFields fields;
  fields.level = PackagingLevel::kPallet;
  fields.company_prefix = 12;
  fields.item_reference = 34;
  fields.serial = 56;
  EXPECT_EQ(EpcToString(EncodeEpcUnchecked(fields)), "pallet:12.34.56");
}

// ----------------------------------------------------------------- RNG ----

TEST(Pcg32Test, DeterministicForSeed) {
  Pcg32 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Pcg32Test, RangeInclusive) {
  Pcg32 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All four values hit.
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32Test, BernoulliMatchesProbability) {
  Pcg32 rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.85)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.85, 0.02);
}

// --------------------------------------------------------------- Config ---

TEST(ConfigTest, ParsesLinesSkippingComments) {
  auto config = Config::FromLines(
      {"# comment", "", "  read_rate = 0.85 ", "shelf_period=60"});
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config.value().Has("read_rate"));
  EXPECT_EQ(config.value().GetDouble("read_rate", 0).value(), 0.85);
  EXPECT_EQ(config.value().GetInt("shelf_period", 0).value(), 60);
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_FALSE(Config::FromLines({"no equals sign"}).ok());
  EXPECT_FALSE(Config::FromLines({"= value-without-key"}).ok());
}

TEST(ConfigTest, FallbacksForMissingKeys) {
  Config config;
  EXPECT_EQ(config.GetInt("absent", 42).value(), 42);
  EXPECT_EQ(config.GetDouble("absent", 1.5).value(), 1.5);
  EXPECT_EQ(config.GetString("absent", "x").value(), "x");
  EXPECT_EQ(config.GetBool("absent", true).value(), true);
}

TEST(ConfigTest, TypedParseErrors) {
  Config config;
  config.Set("n", "not-a-number");
  EXPECT_FALSE(config.GetInt("n", 0).ok());
  EXPECT_FALSE(config.GetDouble("n", 0).ok());
  EXPECT_FALSE(config.GetBool("n", false).ok());
}

TEST(ConfigTest, BoolSpellings) {
  Config config;
  for (const char* spelling : {"true", "1", "yes", "on", "TRUE"}) {
    config.Set("b", spelling);
    EXPECT_TRUE(config.GetBool("b", false).value()) << spelling;
  }
  for (const char* spelling : {"false", "0", "no", "off", "False"}) {
    config.Set("b", spelling);
    EXPECT_FALSE(config.GetBool("b", true).value()) << spelling;
  }
}

TEST(ConfigTest, FromArgsParsesKeyValueTokens) {
  const char* argv[] = {"prog", "a=1", "b=two"};
  auto config = Config::FromArgs(3, argv);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().GetInt("a", 0).value(), 1);
  EXPECT_EQ(config.value().GetString("b", "").value(), "two");
}

TEST(ConfigTest, LaterKeysOverride) {
  auto config = Config::FromLines({"k = 1", "k = 2"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().GetInt("k", 0).value(), 2);
}

TEST(ConfigTest, KeysSorted) {
  Config config;
  config.Set("zeta", "1");
  config.Set("alpha", "2");
  std::vector<std::string> keys = config.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zeta");
}

// ----------------------------------------------------------------- Wire ---

TEST(WireTest, SizesAreFixed) {
  EXPECT_EQ(kReadingWireBytes, 16u);
  EXPECT_EQ(kEventWireBytes, 26u);
}

// ------------------------------------------------------------------ Log ---

/// Captures log output into a string for the duration of a test.
class LogCapture {
 public:
  LogCapture() { SetLogSink(&buffer_); }
  ~LogCapture() {
    SetLogSink(nullptr);
    SetLogJsonMode(false);
    SetMinLogLevel(LogLevel::kInfo);
  }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
};

TEST(LogTest, TextLineCarriesLevelComponentAndMessage) {
  LogCapture capture;
  LogWarn("test", "shard 3 lagging");
  const std::string line = capture.str();
  EXPECT_NE(line.find(" W test: shard 3 lagging\n"), std::string::npos)
      << line;
}

TEST(LogTest, MinLevelFilters) {
  LogCapture capture;
  SetMinLogLevel(LogLevel::kWarn);
  LogInfo("test", "dropped");
  LogError("test", "kept");
  const std::string out = capture.str();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

TEST(LogTest, JsonModeEmitsParseableObjects) {
  LogCapture capture;
  SetLogJsonMode(true);
  LogInfo("serve", "started 4 shards");
  const std::string line = capture.str();
  EXPECT_EQ(line.find("{\"ts_us\":"), 0u) << line;
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"serve\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"started 4 shards\""), std::string::npos)
      << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(LogTest, JsonEscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(LogTest, ConcurrentWritersNeverInterleaveWithinALine) {
  LogCapture capture;
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      const std::string component = "w" + std::to_string(t);
      for (int i = 0; i < kLines; ++i) {
        LogInfo(component, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
      }
    });
  }
  for (auto& t : writers) t.join();
  // Every line, split on '\n', must be complete: level marker, a known
  // component, and the full payload — torn writes would break this.
  std::istringstream lines(capture.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find(" I w"), std::string::npos) << line;
    EXPECT_NE(line.find(": xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
              std::string::npos)
        << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

}  // namespace
}  // namespace spire
