// Expt 6 (Fig. 10): graph memory usage versus node count for several edge-
// pruning thresholds, plus the accuracy cost of pruning.
//
// The paper measured JVM heap; we use the graph's deterministic byte
// accounting. The shape to check: without pruning memory grows super-
// linearly (candidate-edge accumulation), while thresholds 0.5/0.75 keep
// growth linear; pruning barely hurts location accuracy but costs a few
// points of containment accuracy.
//
//   ./expt6_memory [full=true] [key=value ...]
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"
#include "sim/simulator.h"

using namespace spire;
using namespace spire::bench;

namespace {

/// Grows a graph with the given pruning threshold and samples memory at
/// each node-count checkpoint.
std::map<std::size_t, std::size_t> MemoryProfile(
    const SimConfig& sim_config, double threshold,
    const std::vector<std::size_t>& checkpoints) {
  auto sim = WarehouseSimulator::Create(sim_config);
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.inference.prune_threshold = threshold;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream sink;
  std::map<std::size_t, std::size_t> profile;
  std::size_t next = 0;
  while (next < checkpoints.size() && !s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &sink);
    sink.clear();
    if (pipeline.graph().NumNodes() >= checkpoints[next]) {
      profile[checkpoints[next]] = pipeline.graph().MemoryUsage();
      ++next;
    }
  }
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);

  SimConfig sim_config;
  sim_config.pallet_interval = 8;
  sim_config.belt_dwell = 1;
  sim_config.transit_time = 1;
  sim_config.min_cases_per_pallet = 5;
  sim_config.max_cases_per_pallet = 8;
  sim_config.items_per_case = 20;
  sim_config.num_shelves = 64;
  sim_config.shelf_period = 60;
  sim_config.mean_shelf_stay = 1000000;
  sim_config.duration_epochs = 1000000;
  auto overridden = SimConfig::FromConfig(args, sim_config);
  if (overridden.ok()) sim_config = overridden.value();

  std::vector<std::size_t> checkpoints =
      full ? std::vector<std::size_t>{25000, 50000, 75000, 100000, 125000,
                                      150000, 175000}
           : std::vector<std::size_t>{5000, 10000, 20000, 30000};
  const std::vector<double> thresholds{0.0, 0.25, 0.5, 0.75};

  PrintHeader("Expt 6: graph memory vs node count and pruning threshold",
              "Fig. 10");

  std::map<double, std::map<std::size_t, std::size_t>> profiles;
  for (double threshold : thresholds) {
    profiles[threshold] = MemoryProfile(sim_config, threshold, checkpoints);
  }

  TextTable table([&] {
    std::vector<std::string> header{"nodes"};
    for (double threshold : thresholds) {
      header.push_back("MB @ prune=" + TextTable::Num(threshold, 2));
    }
    return header;
  }());
  for (std::size_t checkpoint : checkpoints) {
    std::vector<std::string> row{std::to_string(checkpoint)};
    for (double threshold : thresholds) {
      auto it = profiles[threshold].find(checkpoint);
      row.push_back(it == profiles[threshold].end()
                        ? "-"
                        : TextTable::Num(it->second / (1024.0 * 1024.0), 1));
    }
    table.AddRow(row);
  }
  table.Print();

  // Accuracy cost of pruning (paper: <1% location, up to 8.2% containment).
  // Run at a reduced read rate: with strong confirmations pruning is free,
  // the cost shows when containment rests on co-location history.
  std::printf("\naccuracy cost of pruning (sweep workload, read rate 0.6):\n");
  TextTable accuracy_table(
      {"prune", "location error", "containment error"});
  for (double threshold : {0.0, 0.25, 0.5, 0.75}) {
    RunOptions options;
    options.sim = SweepConfig(full);
    options.sim.read_rate = 0.6;
    options.pipeline.inference.prune_threshold = threshold;
    RunMetrics metrics = RunSpireTrace(options);
    accuracy_table.AddRow(
        {TextTable::Num(threshold, 2),
         TextTable::Num(metrics.accuracy.LocationErrorRate(), 4),
         TextTable::Num(metrics.accuracy.ContainmentErrorRate(), 4)});
  }
  accuracy_table.Print();
  return 0;
}
