// Expt 15 (beyond the paper): segment-direct historical query serving
// (src/query/segment_log) versus materializing the archive per request.
//
// The workload is the natural one for an RFID archive sitting behind a
// tracking API: many independent point queries ("where was pallet X at
// noon?") arriving over time, each too small to justify decoding and
// folding the whole segment. The baseline is what the repo could do before
// this subsystem — EventLog::FromArchive per request; the contender is
// SegmentLog, which binary-searches the `.spix` posting lists, decodes only
// candidate blocks through a sharded LRU BlockCache, and folds only the
// query's slice.
//
// Reports, for a level-2 warehouse trace archived with the bitpack codec:
//   - per-request rate of the FromArchive-per-request baseline (sampled —
//     it is far too slow to run the full workload);
//   - cold-cache segment-direct rate (every candidate block decoded once);
//   - warm-cache rates at 1 / 2 / 4 threads over one shared SegmentLog and
//     cache (per-shard locking is the scaling claim under test);
//   - the warm-cache speedup over the baseline — must be
//     >= kWarmSpeedupFloor x, asserted hard, and written to
//     BENCH_query.json for tools/bench_compare.py to track.
//
// Answers are not assumed correct: every mixed-kind request is evaluated
// through BOTH paths and byte-compared (exit 1 on any divergence), the
// timed runs fold every answer into a checksum that must agree across
// thread counts and passes, and the cache counters must reconcile
// (hits + misses == lookups, blocks decoded <= misses).
//
//   ./expt15_query [full=true] [block_events=N] [requests=N] [cache_mb=M]
//                  [key=value ...]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "eval/table.h"
#include "query/event_log.h"
#include "query/segment_log.h"
#include "sim/simulator.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"

using namespace spire;
using namespace spire::bench;

namespace {

/// Hard floor on warm-cache segment-direct point-query rate versus the
/// EventLog::FromArchive-per-request baseline.
constexpr double kWarmSpeedupFloor = 5.0;

/// FromArchive is O(segment) per request; sample this many requests and
/// extrapolate the per-request rate.
constexpr std::size_t kBaselineSample = 24;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs the pipeline over the trace and returns its output stream.
EventStream GenerateTrace(const SimConfig& config) {
  auto sim = WarehouseSimulator::Create(config);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream events;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &events);
  }
  pipeline.Finish(s.current_epoch() + 1, &events);
  return events;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// --- Requests ---------------------------------------------------------------

enum class Kind {
  kLocationAt,
  kContainerAt,
  kContentsAt,
  kObjectsAt,
  kTrajectoryOf,
  kIsMissingAt,
};

struct Request {
  Kind kind = Kind::kLocationAt;
  std::uint64_t id = 0;  ///< ObjectId, or LocationId for kObjectsAt.
  Epoch epoch = 0;
};

/// The archived universe a workload draws from.
struct Universe {
  std::vector<ObjectId> objects;
  std::vector<LocationId> locations;
  Epoch lo = 0;
  Epoch hi = 0;
};

Universe UniverseOf(const ArchiveReader& reader) {
  Universe u;
  for (const auto& [object, postings] : reader.object_postings()) {
    (void)postings;
    u.objects.push_back(object);
  }
  for (const auto& [location, postings] : reader.location_postings()) {
    (void)postings;
    u.locations.push_back(location);
  }
  u.lo = kInfiniteEpoch;
  for (const BlockMeta& block : reader.blocks()) {
    u.lo = std::min(u.lo, block.min_epoch);
    u.hi = std::max(u.hi, block.max_epoch);
  }
  if (u.objects.empty() || u.lo > u.hi) {
    std::fprintf(stderr, "archive has no queryable objects\n");
    std::exit(1);
  }
  return u;
}

Request RandomRequest(const Universe& u, Kind kind, Pcg32& rng) {
  Request request;
  request.kind = kind;
  request.epoch = rng.NextInRange(u.lo, u.hi);
  if (kind == Kind::kObjectsAt) {
    request.id = u.locations[rng.NextBounded(
        static_cast<std::uint32_t>(u.locations.size()))];
  } else {
    request.id = u.objects[rng.NextBounded(
        static_cast<std::uint32_t>(u.objects.size()))];
  }
  return request;
}

/// `count` pure point lookups — the request mix the speedup floor gates.
std::vector<Request> PointWorkload(const Universe& u, std::size_t count,
                                   std::uint64_t seed) {
  static constexpr Kind kPointKinds[] = {Kind::kLocationAt, Kind::kContainerAt,
                                         Kind::kIsMissingAt};
  Pcg32 rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(RandomRequest(u, kPointKinds[rng.NextBounded(3)], rng));
  }
  return requests;
}

/// `count` requests over all six kinds — the answer-identity workload.
std::vector<Request> MixedWorkload(const Universe& u, std::size_t count,
                                   std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Request> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Kind kind = static_cast<Kind>(rng.NextBounded(6));
    if (kind == Kind::kObjectsAt && u.locations.empty()) {
      kind = Kind::kLocationAt;
    }
    requests.push_back(RandomRequest(u, kind, rng));
  }
  return requests;
}

// --- Canonical answers ------------------------------------------------------

std::string IdList(const std::vector<ObjectId>& ids) {
  std::string out = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  return out + "]";
}

std::string StayList(const std::vector<Stay>& stays) {
  std::string out = "[";
  for (std::size_t i = 0; i < stays.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(stays[i].start) + ":" +
           std::to_string(stays[i].end) + "@" +
           std::to_string(stays[i].location);
  }
  return out + "]";
}

std::string AnswerSegment(const SegmentLog& log, const Request& r) {
  switch (r.kind) {
    case Kind::kLocationAt: {
      auto a = log.LocationAt(r.id, r.epoch);
      Check(a.status(), "LocationAt");
      return std::to_string(a.value());
    }
    case Kind::kContainerAt: {
      auto a = log.ContainerAt(r.id, r.epoch);
      Check(a.status(), "ContainerAt");
      return std::to_string(a.value());
    }
    case Kind::kContentsAt: {
      auto a = log.ContentsAt(r.id, r.epoch);
      Check(a.status(), "ContentsAt");
      return IdList(a.value());
    }
    case Kind::kObjectsAt: {
      auto a = log.ObjectsAt(static_cast<LocationId>(r.id), r.epoch);
      Check(a.status(), "ObjectsAt");
      return IdList(a.value());
    }
    case Kind::kTrajectoryOf: {
      auto a = log.TrajectoryOf(r.id);
      Check(a.status(), "TrajectoryOf");
      return StayList(a.value());
    }
    case Kind::kIsMissingAt: {
      auto a = log.IsMissingAt(r.id, r.epoch);
      Check(a.status(), "IsMissingAt");
      return std::string(a.value() ? "true" : "false");
    }
  }
  return "";
}

std::string AnswerMaterialized(const EventLog& log, const Request& r) {
  switch (r.kind) {
    case Kind::kLocationAt:
      return std::to_string(log.LocationAt(r.id, r.epoch));
    case Kind::kContainerAt:
      return std::to_string(log.ContainerAt(r.id, r.epoch));
    case Kind::kContentsAt:
      return IdList(log.ContentsAt(r.id, r.epoch));
    case Kind::kObjectsAt:
      return IdList(log.ObjectsAt(static_cast<LocationId>(r.id), r.epoch));
    case Kind::kTrajectoryOf:
      return StayList(log.TrajectoryOf(r.id));
    case Kind::kIsMissingAt:
      return std::string(log.IsMissingAt(r.id, r.epoch) ? "true" : "false");
  }
  return "";
}

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kLocationAt: return "location_at";
    case Kind::kContainerAt: return "container_at";
    case Kind::kContentsAt: return "contents_at";
    case Kind::kObjectsAt: return "objects_at";
    case Kind::kTrajectoryOf: return "trajectory_of";
    case Kind::kIsMissingAt: return "is_missing_at";
  }
  return "?";
}

// --- Timed runs -------------------------------------------------------------

/// Serves the workload on `threads` striding threads over one shared log;
/// returns wall seconds. `*checksum` accumulates a thread-count-invariant
/// hash of every answer (also defeats dead-code elimination).
double ServeWorkload(const SegmentLog& log, const std::vector<Request>& requests,
                     int threads, std::uint64_t* checksum) {
  std::vector<std::uint64_t> partial(static_cast<std::size_t>(threads), 0);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t sum = 0;
      for (std::size_t i = static_cast<std::size_t>(t); i < requests.size();
           i += static_cast<std::size_t>(threads)) {
        sum += std::hash<std::string>{}(AnswerSegment(log, requests[i]));
      }
      partial[static_cast<std::size_t>(t)] = sum;
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = Seconds(t0);
  *checksum = 0;
  for (std::uint64_t sum : partial) *checksum += sum;
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = PaperOutputConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();
  const std::size_t block_events = static_cast<std::size_t>(
      args.GetInt("block_events", 1024).value_or(1024));
  const std::size_t num_requests = static_cast<std::size_t>(
      args.GetInt("requests", full ? 40000 : 20000).value_or(20000));
  const std::uint64_t cache_mb = static_cast<std::uint64_t>(
      args.GetInt("cache_mb", 64).value_or(64));

  PrintHeader("Expt 15: segment-direct query serving vs per-request "
              "materialization",
              "beyond the paper; query/segment_log + block cache");

  const EventStream events = GenerateTrace(base);
  const std::string path =
      std::filesystem::temp_directory_path().string() + "/expt15.sparc";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
  ArchiveOptions archive_options;
  archive_options.block_events = block_events;
  archive_options.codec = BlockCodec::kBitpack;
  auto writer = ArchiveWriter::Open(path, archive_options);
  Check(writer.status(), "archive open");
  Check(writer.value()->Append(events), "archive append");
  Check(writer.value()->Close(), "archive close");

  auto reader = ArchiveReader::Open(path);
  Check(reader.status(), "archive reader open");
  std::printf("trace: %zu events in %zu blocks of <= %zu\n", events.size(),
              reader.value().num_blocks(), block_events);

  const Universe universe = UniverseOf(reader.value());
  const std::vector<Request> point =
      PointWorkload(universe, num_requests, /*seed=*/0x15151);
  const std::vector<Request> mixed =
      MixedWorkload(universe, std::max<std::size_t>(num_requests / 10, 500),
                    /*seed=*/0x15152);
  std::printf("workload: %zu point requests (timed), %zu mixed requests "
              "(identity-checked), %zu objects, %zu locations, epochs "
              "[%lld, %lld]\n\n",
              point.size(), mixed.size(), universe.objects.size(),
              universe.locations.size(), static_cast<long long>(universe.lo),
              static_cast<long long>(universe.hi));

  auto cache = std::make_shared<BlockCache>(cache_mb << 20);
  auto log = SegmentLog::Open(path, ReaderOptions{}, cache);
  Check(log.status(), "segment log open");

  // --- Answer identity: every mixed request through both paths -------------
  auto materialized = EventLog::FromArchive(reader.value(), 0, kInfiniteEpoch,
                                            /*decompress=*/false);
  Check(materialized.status(), "materialized build");
  for (const Request& r : mixed) {
    const std::string direct = AnswerSegment(*log.value(), r);
    const std::string expect = AnswerMaterialized(materialized.value(), r);
    if (direct != expect) {
      std::fprintf(stderr,
                   "FAIL: %s(%llu, %lld) diverged: segment-direct %s, "
                   "materialized %s\n",
                   KindName(r.kind), static_cast<unsigned long long>(r.id),
                   static_cast<long long>(r.epoch), direct.c_str(),
                   expect.c_str());
      return 1;
    }
  }
  std::printf("identity: %zu mixed answers equal the materialized "
              "EventLog's\n",
              mixed.size());

  // --- Baseline: EventLog::FromArchive per request (sampled) ---------------
  const std::size_t sample = std::min(kBaselineSample, point.size());
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sample; ++i) {
    auto per_request = EventLog::FromArchive(reader.value(), 0,
                                             kInfiniteEpoch, false);
    Check(per_request.status(), "baseline build");
    const std::string got = AnswerMaterialized(per_request.value(), point[i]);
    const std::string expect = AnswerSegment(*log.value(), point[i]);
    if (got != expect) {
      std::fprintf(stderr, "FAIL: baseline sample %zu diverged\n", i);
      return 1;
    }
  }
  const double baseline_s = Seconds(t0);
  const double baseline_qps = static_cast<double>(sample) / baseline_s;

  // --- Segment-direct: cold, then warm at 1/2/4 threads --------------------
  // The identity and baseline checks above already touched blocks, so the
  // cold pass gets its own log and cache.
  auto cold_cache = std::make_shared<BlockCache>(cache_mb << 20);
  auto cold_log = SegmentLog::Open(path, ReaderOptions{}, cold_cache);
  Check(cold_log.status(), "cold segment log open");
  std::uint64_t cold_sum = 0;
  const double cold_s = ServeWorkload(*cold_log.value(), point, 1, &cold_sum);
  const double cold_qps = static_cast<double>(point.size()) / cold_s;

  struct WarmRun {
    int threads = 1;
    double best_s = 0.0;
  };
  std::vector<WarmRun> warm;
  for (int threads : {1, 2, 4}) {
    WarmRun run;
    run.threads = threads;
    run.best_s = 1e30;
    for (int pass = 0; pass < 2; ++pass) {
      std::uint64_t sum = 0;
      const double elapsed =
          ServeWorkload(*cold_log.value(), point, threads, &sum);
      if (sum != cold_sum) {
        std::fprintf(stderr,
                     "FAIL: warm pass (%d threads) answer checksum diverged "
                     "from the cold pass\n",
                     threads);
        return 1;
      }
      run.best_s = std::min(run.best_s, elapsed);
    }
    warm.push_back(run);
  }
  const double warm_qps_1t =
      static_cast<double>(point.size()) / warm[0].best_s;

  // --- Counter reconciliation ----------------------------------------------
  const BlockCache::Stats stats = cold_cache->GetStats();
  if (stats.hits + stats.misses != stats.lookups) {
    std::fprintf(stderr, "FAIL: cache counters do not reconcile: %llu hits + "
                 "%llu misses != %llu lookups\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.lookups));
    return 1;
  }
  if (cold_log.value()->blocks_decoded() > stats.misses) {
    std::fprintf(stderr, "FAIL: %llu blocks decoded exceeds %llu cache "
                 "misses\n",
                 static_cast<unsigned long long>(
                     cold_log.value()->blocks_decoded()),
                 static_cast<unsigned long long>(stats.misses));
    return 1;
  }
  std::printf("cache: %llu lookups, %llu hits, %llu misses, %llu evictions, "
              "%llu blocks decoded (counters reconcile)\n\n",
              static_cast<unsigned long long>(stats.lookups),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(
                  cold_log.value()->blocks_decoded()));

  TextTable table({"mode", "threads", "requests", "seconds", "queries/s",
                   "vs baseline"});
  table.AddRow({"FromArchive per request", "1", std::to_string(sample),
                TextTable::Num(baseline_s, 3), TextTable::Num(baseline_qps, 1),
                "1.00"});
  table.AddRow({"segment-direct cold", "1", std::to_string(point.size()),
                TextTable::Num(cold_s, 3), TextTable::Num(cold_qps, 1),
                TextTable::Num(cold_qps / baseline_qps, 1)});
  for (const WarmRun& run : warm) {
    const double qps = static_cast<double>(point.size()) / run.best_s;
    table.AddRow({"segment-direct warm", std::to_string(run.threads),
                  std::to_string(point.size()), TextTable::Num(run.best_s, 3),
                  TextTable::Num(qps, 1),
                  TextTable::Num(qps / baseline_qps, 1)});
  }
  table.Print();

  const double speedup = warm_qps_1t / baseline_qps;
  std::printf("\nwarm-cache point-query speedup: %.1fx vs "
              "FromArchive-per-request (floor %.0fx)\n",
              speedup, kWarmSpeedupFloor);
  if (speedup < kWarmSpeedupFloor) {
    std::fprintf(stderr,
                 "FAIL: warm segment-direct serving is %.2fx the "
                 "per-request baseline, below the %.0fx floor\n",
                 speedup, kWarmSpeedupFloor);
    return 1;
  }

  BenchReport report("query");
  report.Add("events", static_cast<double>(events.size()));
  report.Add("point_requests", static_cast<double>(point.size()));
  report.Add("baseline_query_us", 1e6 / baseline_qps);
  report.Add("cold_query_us", 1e6 / cold_qps);
  report.Add("warm_query_us", 1e6 / warm_qps_1t);
  report.Add("cold_query_speedup", cold_qps / baseline_qps);
  report.Add("warm_query_speedup", speedup);
  for (const WarmRun& run : warm) {
    report.Add("warm_qps_" + std::to_string(run.threads) + "_threads",
               static_cast<double>(point.size()) / run.best_s);
  }
  Check(report.Write(), "report write");

  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
  return 0;
}
