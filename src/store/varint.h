// LEB128 varint and zigzag coding for the archive block codec.
//
// The archive encodes event columns as deltas: epochs are near-sorted and
// object ids cluster by packaging level, so successive differences are small
// and a 64-bit value usually fits in one or two bytes (the Sparkey /
// Simple8b-style integer-coding idiom). Deltas can be negative, so signed
// values ride through the zigzag map first.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace spire {

/// Maximum encoded size of one 64-bit varint.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends `value` as a little-endian base-128 varint.
inline void PutVarint64(std::uint64_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

/// Decodes one varint starting at `*offset`, advancing it past the encoding.
/// Fails on truncation or an encoding longer than 10 bytes.
inline Result<std::uint64_t> GetVarint64(const std::vector<std::uint8_t>& in,
                                         std::size_t* offset) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (*offset >= in.size()) {
      return Status::Corruption("truncated varint");
    }
    const std::uint8_t byte = in[(*offset)++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) return value;
  }
  return Status::Corruption("varint longer than 10 bytes");
}

/// Maps signed to unsigned so small-magnitude values (either sign) encode
/// short: 0,-1,1,-2,... -> 0,1,2,3,...
inline std::uint64_t ZigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

/// Inverse of ZigzagEncode.
inline std::int64_t ZigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace spire
