#include "compress/compressor.h"

#include <algorithm>
#include <vector>

namespace spire {

Compressor::Compressor(CompressorOptions options) : options_(options) {}

void Compressor::Report(const ObjectStateEstimate& state, Epoch epoch,
                        EventStream* out) {
  Tracked& tracked = tracked_[state.object];
  EmitContainmentChange(tracked, state, epoch, out);
  EmitLocationChange(tracked, state, epoch, out);
}

void Compressor::EmitContainmentChange(Tracked& tracked,
                                       const ObjectStateEstimate& state,
                                       Epoch epoch, EventStream* out) {
  if (state.container == tracked.open_container) return;
  CloseContainment(state.object, tracked, epoch, out);
  if (state.container != kNoObject) {
    if (options_.emit_containment) {
      out->push_back(Event::StartContainment(state.object, state.container,
                                             epoch));
    }
    tracked.open_container = state.container;
    tracked.containment_start = epoch;
  }
}

void Compressor::EmitLocationChange(Tracked& tracked,
                                    const ObjectStateEstimate& state,
                                    Epoch epoch, EventStream* out) {
  if (SuppressContainedLocation(tracked)) {
    // Level 2: the open location event (if any) is closed when containment
    // begins; afterwards the container's events imply this object's location.
    CloseLocation(state.object, tracked, epoch, out);
    if (state.location != kUnknownLocation) {
      tracked.last_known_location = state.location;
      tracked.missing_reported = false;
    } else if (state.missing && !tracked.missing_reported) {
      // A contained object can still be reported missing; the containment
      // pair encloses the Missing singleton (Section V-A).
      if (options_.emit_location) {
        out->push_back(Event::Missing(state.object,
                                      tracked.last_known_location, epoch));
      }
      tracked.missing_reported = true;
    }
    return;
  }

  if (state.location != kUnknownLocation) {
    tracked.missing_reported = false;
    if (state.location == tracked.open_location) return;
    CloseLocation(state.object, tracked, epoch, out);
    if (options_.emit_location) {
      out->push_back(Event::StartLocation(state.object, state.location, epoch));
    }
    tracked.open_location = state.location;
    tracked.location_start = epoch;
    tracked.last_known_location = state.location;
    return;
  }

  // The object is away from every known location: close the open stay and,
  // for an anomaly, flag it with a Missing singleton.
  CloseLocation(state.object, tracked, epoch, out);
  if (state.missing && !tracked.missing_reported) {
    if (options_.emit_location) {
      out->push_back(Event::Missing(state.object, tracked.last_known_location,
                                    epoch));
    }
    tracked.missing_reported = true;
  }
}

void Compressor::CloseLocation(ObjectId object, Tracked& tracked, Epoch epoch,
                               EventStream* out) {
  if (tracked.open_location == kUnknownLocation) return;
  if (options_.emit_location) {
    out->push_back(Event::EndLocation(object, tracked.open_location,
                                      tracked.location_start, epoch));
  }
  tracked.open_location = kUnknownLocation;
  tracked.location_start = kNeverEpoch;
}

void Compressor::CloseContainment(ObjectId object, Tracked& tracked,
                                  Epoch epoch, EventStream* out) {
  if (tracked.open_container == kNoObject) return;
  if (options_.emit_containment) {
    out->push_back(Event::EndContainment(object, tracked.open_container,
                                         tracked.containment_start, epoch));
  }
  tracked.open_container = kNoObject;
  tracked.containment_start = kNeverEpoch;
}

void Compressor::Retire(ObjectId object, Epoch epoch, EventStream* out) {
  auto it = tracked_.find(object);
  if (it == tracked_.end()) return;
  CloseContainment(object, it->second, epoch, out);
  CloseLocation(object, it->second, epoch, out);
  tracked_.erase(it);
}

void Compressor::Finish(Epoch epoch, EventStream* out) {
  std::vector<ObjectId> objects;
  objects.reserve(tracked_.size());
  for (const auto& [id, tracked] : tracked_) objects.push_back(id);
  std::sort(objects.begin(), objects.end());
  for (ObjectId id : objects) Retire(id, epoch, out);
}

}  // namespace spire
