#include "smurf/smurf.h"

#include <algorithm>
#include <cmath>

#include "obs/registry.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* epochs;
  obs::Counter* readings;
  obs::Counter* tags_forgotten;
};

const Instruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("smurf", "epochs"),
      registry.GetCounter("smurf", "readings"),
      registry.GetCounter("smurf", "tags_forgotten"),
  };
  return &instruments;
}

}  // namespace

std::vector<ObjectStateEstimate> SmurfCleaner::ProcessEpoch(
    Epoch now, const EpochReadings& readings) {
  if (const Instruments* instruments = GetInstruments()) {
    instruments->epochs->Add(1);
    instruments->readings->Add(readings.size());
  }
  if (location_periods_.empty()) {
    location_periods_ = LocationPeriods(*registry_);
  }
  // Ingest this epoch's readings (at most one per tag after deduplication;
  // extra ticks collapse into the same epoch entry).
  for (const RfidReading& reading : readings) {
    TagState& tag = tags_[reading.tag];
    LocationId location = registry_->LocationAt(reading.reader, now);
    if (tag.first_seen == kNeverEpoch) tag.first_seen = now;
    if (location != tag.location) {
      // A location change is a transition and a new sampling environment
      // (different reader cadence): restart the per-tag statistics.
      tag.observations.clear();
      tag.window = options_.min_window;
      tag.first_seen = now;
      tag.location = location;
      tag.period = PeriodAt(location);
    }
    if (tag.observations.empty() || tag.observations.back() != now) {
      tag.observations.push_back(now);
    }
    tag.last_seen = now;
  }

  // Adapt windows and emit smoothed states.
  std::vector<ObjectStateEstimate> estimates;
  estimates.reserve(tags_.size());
  std::vector<ObjectId> forgotten;
  for (auto& [id, tag] : tags_) {
    if (now - tag.last_seen > options_.forget_after) {
      forgotten.push_back(id);
      continue;
    }
    Adapt(tag, now);
    ObjectStateEstimate estimate;
    estimate.object = id;
    // The smoothing window is inclusive at its left edge: a tag whose last
    // read is exactly window * period opportunities old is still inside
    // [now - w * period, now] and counts as present.
    const bool present =
        now - tag.last_seen <=
        static_cast<Epoch>(tag.window) * tag.period;
    estimate.location = present ? tag.location : kUnknownLocation;
    estimate.container = kNoObject;  // SMURF has no containment notion.
    estimates.push_back(estimate);
  }
  if (!forgotten.empty()) {
    if (const Instruments* instruments = GetInstruments()) {
      instruments->tags_forgotten->Add(forgotten.size());
    }
  }
  for (ObjectId id : forgotten) tags_.erase(id);
  return estimates;
}

Epoch SmurfCleaner::PeriodAt(LocationId location) const {
  if (!options_.frequency_aware) return 1;
  if (location >= location_periods_.size()) return 1;
  return std::max<Epoch>(1, location_periods_[location]);
}

void SmurfCleaner::Adapt(TagState& tag, Epoch now) {
  // All window arithmetic is in reading *opportunities*: epochs divided by
  // the period of the tag's current reader (1 when frequency awareness is
  // off). This is the static-reader extension of Section VI-D; vanilla
  // SMURF assumes an interrogation every epoch. The window adapts once per
  // opportunity — re-testing the same window state every epoch would let a
  // single unlucky sample halve it repeatedly.
  const Epoch period = tag.period;
  if (tag.last_adapt != kNeverEpoch && now - tag.last_adapt < period) return;
  tag.last_adapt = now;
  // Inclusive horizon: an observation exactly max_window opportunities old
  // is still usable history.
  const Epoch horizon = now - static_cast<Epoch>(options_.max_window) * period;
  while (!tag.observations.empty() && tag.observations.front() < horizon) {
    tag.observations.pop_front();
  }

  // Per-opportunity read probability over the observable history.
  const Epoch observable = std::min<Epoch>(
      options_.max_window, (now - tag.first_seen) / period + 1);
  if (observable <= 0) return;
  double p_avg = static_cast<double>(tag.observations.size()) /
                 static_cast<double>(observable);
  p_avg = std::min(p_avg, 1.0);

  // Completeness-driven target window w* = ln(1/delta) / p.
  int w_star = options_.max_window;
  if (p_avg > 0.0) {
    w_star = static_cast<int>(
        std::ceil(std::log(1.0 / options_.delta) / p_avg));
    w_star = std::clamp(w_star, options_.min_window, options_.max_window);
  }

  // Observations inside the current (left-inclusive) window.
  const Epoch window_start = now - static_cast<Epoch>(tag.window) * period;
  auto first_in_window = std::lower_bound(tag.observations.begin(),
                                          tag.observations.end(),
                                          window_start);
  const auto s_w = static_cast<double>(
      std::distance(first_in_window, tag.observations.end()));

  // Binomial CLT transition test: significantly fewer observations than the
  // window expects indicate the tag likely left mid-window.
  const double w = static_cast<double>(tag.window);
  const double expectation = w * p_avg;
  const double deviation = 2.0 * std::sqrt(w * p_avg * (1.0 - p_avg));
  if (tag.window > options_.min_window && s_w < expectation - deviation) {
    tag.window = std::max(options_.min_window, tag.window / 2);
  } else if (tag.window < w_star) {
    tag.window = std::min(w_star, tag.window + 2);
  }
}

int SmurfCleaner::WindowOf(ObjectId tag) const {
  auto it = tags_.find(tag);
  return it == tags_.end() ? 0 : it->second.window;
}

}  // namespace spire
