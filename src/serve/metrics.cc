#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace spire::serve {

namespace {

/// Bucket index of a duration in microseconds (>= 1).
int BucketOf(std::uint64_t us) {
  const int bit = std::bit_width(us) - 1;  // floor(log2(us)).
  return std::min(bit, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  const std::uint64_t us =
      seconds <= 0.0 ? 1
                     : std::max<std::uint64_t>(
                           1, static_cast<std::uint64_t>(seconds * 1e6));
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_us_.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_us() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_us_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::max_us() const {
  return static_cast<double>(max_us_.load(std::memory_order_relaxed));
}

double LatencyHistogram::QuantileUs(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return static_cast<double>(std::uint64_t{1} << (i + 1));  // Upper bound.
    }
  }
  return max_us();
}

std::string LatencyHistogram::ToJson() const {
  std::ostringstream out;
  out << "{\"count\":" << count() << ",\"mean_us\":" << mean_us()
      << ",\"p50_us\":" << QuantileUs(0.50) << ",\"p95_us\":" << QuantileUs(0.95)
      << ",\"p99_us\":" << QuantileUs(0.99) << ",\"max_us\":" << max_us()
      << "}";
  return out.str();
}

void QueueMetrics::RecordDepth(std::uint64_t depth) {
  std::uint64_t seen = depth_highwater.load(std::memory_order_relaxed);
  while (depth > seen && !depth_highwater.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

std::string QueueMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"depth_highwater\":"
      << depth_highwater.load(std::memory_order_relaxed)
      << ",\"blocked_pushes\":" << blocked_pushes.load(std::memory_order_relaxed)
      << ",\"blocked_pops\":" << blocked_pops.load(std::memory_order_relaxed)
      << ",\"dropped\":" << dropped.load(std::memory_order_relaxed) << "}";
  return out.str();
}

double ShardMetrics::EpochsPerBusySecond() const {
  const std::uint64_t us = busy_us.load(std::memory_order_relaxed);
  if (us == 0) return 0.0;
  return static_cast<double>(epochs.load(std::memory_order_relaxed)) /
         (static_cast<double>(us) / 1e6);
}

Metrics::Metrics(int num_shards) {
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardMetrics>());
  }
}

std::string Metrics::ToJson(double wall_seconds, int num_sites) const {
  std::uint64_t epochs = 0, events = 0, readings = 0;
  for (const auto& shard : shards_) {
    epochs = std::max(epochs, shard->epochs.load(std::memory_order_relaxed));
    events += shard->events.load(std::memory_order_relaxed);
    readings += shard->readings.load(std::memory_order_relaxed);
  }
  std::ostringstream out;
  out << "{\"num_shards\":" << shards_.size() << ",\"num_sites\":" << num_sites
      << ",\"wall_seconds\":" << wall_seconds << ",\"epochs\":" << epochs
      << ",\"events\":" << events << ",\"readings\":" << readings
      << ",\"epochs_per_sec\":"
      << (wall_seconds > 0.0 ? static_cast<double>(epochs) / wall_seconds
                             : 0.0)
      << ",\"shards\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardMetrics& shard = *shards_[i];
    if (i > 0) out << ",";
    out << "{\"shard\":" << i
        << ",\"epochs\":" << shard.epochs.load(std::memory_order_relaxed)
        << ",\"events\":" << shard.events.load(std::memory_order_relaxed)
        << ",\"readings\":" << shard.readings.load(std::memory_order_relaxed)
        << ",\"busy_seconds\":"
        << static_cast<double>(shard.busy_us.load(std::memory_order_relaxed)) /
               1e6
        << ",\"epochs_per_busy_sec\":" << shard.EpochsPerBusySecond()
        << ",\"process_latency\":" << shard.process_latency.ToJson()
        << ",\"input_queue\":" << shard.input_queue.ToJson()
        << ",\"output_queue\":" << shard.output_queue.ToJson() << "}";
  }
  out << "],\"merger\":{\"epochs\":"
      << merger_.epochs_merged.load(std::memory_order_relaxed)
      << ",\"events\":" << merger_.events_out.load(std::memory_order_relaxed)
      << ",\"wait_seconds\":"
      << static_cast<double>(merger_.wait_us.load(std::memory_order_relaxed)) /
             1e6
      << "}}";
  return out.str();
}

}  // namespace spire::serve
