// Online stream compression (Section V).
//
// A compressor consumes one interpreted per-object state per epoch and emits
// only the events that signal a *state change*; readings that merely confirm
// the current state are redundant and dropped. Two levels exist:
//
//  * Level 1 (range compression): an object's stay at one location, or one
//    containment relationship, is collapsed into a single ranged event.
//  * Level 2 (location compression using containment): additionally, while
//    an object's containment is stable, its location updates are suppressed
//    entirely — the location is recoverable from the container's updates
//    (see compress/decompress.h). This minimizes location output to
//    top-level containers only.
//
// Both levels are lossless with respect to the interpreted state stream.
#pragma once

#include <set>
#include <unordered_map>

#include "compress/event.h"
#include "common/types.h"

namespace spire {

/// The interpreted state of one object at one epoch, as produced by the
/// interpretation module after conflict resolution.
struct ObjectStateEstimate {
  ObjectId object = kNoObject;
  /// Most likely location; kUnknownLocation means the object is away from
  /// every known location (missing / in transit).
  LocationId location = kUnknownLocation;
  /// Most likely direct container; kNoObject when uncontained.
  ObjectId container = kNoObject;
  /// When the location is unknown: emit a Missing singleton (true, the
  /// interpretation semantics — inference cannot tell transit from theft)
  /// or only close the open location event (false, used by the ground-truth
  /// recorder for ordinary transits between locations).
  bool missing = true;
};

/// Options shared by both compression levels.
struct CompressorOptions {
  /// When false, Start/EndContainment messages are suppressed from output
  /// (Expt 8 measures "location events only" streams this way). Containment
  /// is still *tracked* for level-2 suppression decisions.
  bool emit_containment = true;
  /// When false, location messages are suppressed (containment-only stream).
  bool emit_location = true;
};

/// Observes level-2 suppression decisions. Wired up by the explain channel;
/// null (the default) costs one pointer compare per suppressed report.
class CompressorObserver {
 public:
  virtual ~CompressorObserver() = default;
  /// A contained object's location report was dropped entirely: the
  /// decompressor derives the same location through the chain opened by
  /// `covering_container`, so the report carried no information.
  virtual void OnLocationSuppressed(ObjectId object, Epoch epoch,
                                    ObjectId covering_container) = 0;
};

/// Base class implementing the shared change-detection state machine.
/// Subclasses decide whether a contained object's location updates are
/// emitted (level 1) or suppressed (level 2).
class Compressor {
 public:
  explicit Compressor(CompressorOptions options = {});
  virtual ~Compressor() = default;

  /// Installs (or clears, with nullptr) the suppression observer. Not owned.
  void SetObserver(CompressorObserver* observer) { observer_ = observer; }

  /// Reports the newly interpreted state of an object at `epoch`, appending
  /// any resulting events to `out`. Reporting the unchanged state is a
  /// no-op (that is the compression). Objects may be reported at any epoch
  /// cadence; unreported objects simply keep their last state.
  void Report(const ObjectStateEstimate& state, Epoch epoch, EventStream* out);

  /// The object left the physical world through a proper channel: releases
  /// its contents (their containments close and suppressed stays resume
  /// explicitly), closes its own open events, and forgets it.
  void Retire(ObjectId object, Epoch epoch, EventStream* out);

  /// The container named by this object's open containment event, or
  /// kNoObject. Lets the pipeline order reports so containment-terminating
  /// updates precede the former container's location updates.
  ObjectId OpenContainerOf(ObjectId object) const {
    auto it = tracked_.find(object);
    return it == tracked_.end() ? kNoObject : it->second.open_container;
  }

  /// Closes every open event (end of trace) so the stream is well-formed.
  void Finish(Epoch epoch, EventStream* out);

  /// Removes meaningless End/Start churn from one epoch's output slice
  /// [first, out->size()): a stay that ends and restarts at the same
  /// location within one epoch never really ended. Containment-driven
  /// propagation can close a child's stay that the child's own (later)
  /// report re-opens in place; the decompressor cancels exactly such pairs
  /// (Section V-C duplicate suppression), so the emitted stream must not
  /// keep them either. Also repairs suppress-closes whose derivation chain
  /// evaporated within the epoch (the chain root's stay closed after the
  /// child's stay was suppressed against it) by resuming those stays
  /// explicitly, and hands explicit stays that match their chain root's
  /// location over to derived tracking (level 2's steady state: a closing
  /// End whose location the decompressor re-derives in place). Call once
  /// per epoch after all Report/Retire calls.
  void CancelEpochChurn(Epoch epoch, EventStream* out, std::size_t first);

  /// Number of objects currently tracked.
  std::size_t tracked_objects() const { return tracked_.size(); }

 protected:
  /// Per-object bookkeeping.
  struct Tracked {
    /// Open location event (kUnknownLocation = none open).
    LocationId open_location = kUnknownLocation;
    Epoch location_start = kNeverEpoch;
    /// Open containment event (kNoObject = none open).
    ObjectId open_container = kNoObject;
    Epoch containment_start = kNeverEpoch;
    /// Last known (reported) location; used as Missing's locationMissingFrom.
    LocationId last_known_location = kUnknownLocation;
    /// True after a Missing message until the object is seen again.
    bool missing_reported = false;
    /// True while the decompressor holds a *derived* stay for this object
    /// (reconstructed from its containment chain rather than an explicit
    /// StartLocation). While set, location_start tracks the derived stay's
    /// start. Mutually exclusive with an open explicit stay.
    bool derived_open = false;
  };

  /// Level hook: true when location updates of this (contained) object must
  /// be suppressed.
  virtual bool SuppressContainedLocation(const Tracked& tracked) const = 0;

  void EmitLocationChange(Tracked& tracked, const ObjectStateEstimate& state,
                          Epoch epoch, EventStream* out);
  void EmitContainmentChange(Tracked& tracked, const ObjectStateEstimate& state,
                             Epoch epoch, EventStream* out);
  void CloseLocation(ObjectId object, Tracked& tracked, Epoch epoch,
                     EventStream* out);
  void CloseContainment(ObjectId object, Tracked& tracked, Epoch epoch,
                        EventStream* out);
  /// Emits a Missing singleton unless one is already pending or the object
  /// was never located (no location to be missing from).
  void EmitMissing(ObjectId object, Tracked& tracked, Epoch epoch,
                   EventStream* out);
  /// The open location of the top-level container of this object's open
  /// containment chain — the location decompression derives for suppressed
  /// children — or kUnknownLocation when the chain's root has no open stay.
  LocationId DerivedRootLocation(const Tracked& tracked) const;
  /// The location the decompressor's reconstructed stay for this object
  /// shows right now: the explicit open stay if one exists, otherwise the
  /// derived chain-root location of a suppressed object that has been
  /// located before. kUnknownLocation = no stay.
  LocationId EffectiveLocation(const Tracked& tracked) const;
  /// Closes the containments of this object's direct contents and resumes
  /// their suppressed stays explicitly (used by Retire).
  void ReleaseChildren(ObjectId object, Epoch epoch, EventStream* out);
  /// Copies a location transition of `parent` down to its transitive
  /// contents, mirroring the decompressor's propagation rules so level-1
  /// output and decompressed level-2 output stay event-equivalent.
  void PropagateLocation(ObjectId parent, LocationId location, Epoch epoch,
                         EventStream* out);

  CompressorOptions options_;
  CompressorObserver* observer_ = nullptr;
  std::unordered_map<ObjectId, Tracked> tracked_;
  /// Objects whose stay was suppress-closed at containment entry during the
  /// current epoch. The close bet on the chain root's stay surviving the
  /// epoch; CancelEpochChurn re-checks the bet once all reports are in.
  std::vector<ObjectId> suppress_closed_;
  /// Children of each open containment, kept sorted for deterministic
  /// propagation order.
  std::unordered_map<ObjectId, std::set<ObjectId>> children_;
};

/// Level-1 range compression (Section V-B): every state change is emitted;
/// stays are collapsed into ranged events. Location and containment streams
/// are independent and individually queriable.
class RangeCompressor final : public Compressor {
 public:
  using Compressor::Compressor;

 protected:
  bool SuppressContainedLocation(const Tracked&) const override {
    return false;
  }
};

/// Level-2 compression (Section V-C): while an object's containment is
/// stable its location updates are omitted; only top-level containers carry
/// location events. When containment ends, location updates for the object
/// resume immediately.
class ContainmentCompressor final : public Compressor {
 public:
  using Compressor::Compressor;

 protected:
  bool SuppressContainedLocation(const Tracked& tracked) const override {
    return tracked.open_container != kNoObject;
  }
};

}  // namespace spire
