// Unit tests for src/inference: edge inference (Eqs. 1-2), node inference
// (Eqs. 3-4), the iterative sweep, pruning, scheduling, and conflict
// resolution (Table I).
#include <gtest/gtest.h>

#include <cmath>

#include "common/epc.h"
#include "graph/graph.h"
#include "inference/conflict.h"
#include "inference/edge_inference.h"
#include "inference/iterative.h"
#include "inference/node_inference.h"
#include "inference/schedule.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kCaseA = Obj(PackagingLevel::kCase, 2);
const ObjectId kCaseB = Obj(PackagingLevel::kCase, 3);
const ObjectId kPallet = Obj(PackagingLevel::kPallet, 4);

/// Pushes `history` (index 0 = oldest pushed = least recent ... pushed in
/// order, so the LAST element becomes the most recent bit).
void PushHistory(Edge& edge, std::initializer_list<bool> history) {
  for (bool bit : history) edge.recent_colocations.Push(bit);
}

// -------------------------------------------------------- Edge inference --

class EdgeInferenceTest : public ::testing::Test {
 protected:
  EdgeInferenceTest() : inferencer_(&graph_, &params_) {
    graph_.BeginEpoch(1);
  }

  Graph graph_{8};
  InferenceParams params_;
  EdgeInferencer inferencer_;
};

TEST_F(EdgeInferenceTest, WeightAveragesHistoryWithAlphaZero) {
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(e), {true, false, true, true});
  params_.alpha = 0.0;
  EXPECT_DOUBLE_EQ(inferencer_.Weight(graph_.edge(e)), 0.75);
}

TEST_F(EdgeInferenceTest, WeightNormalizesOverObservedBitsOnly) {
  // A fresh edge with one positive instance has full weight (DESIGN.md #3);
  // normalizing over the whole capacity would starve new edges.
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(e), {true});
  EXPECT_DOUBLE_EQ(inferencer_.Weight(graph_.edge(e)), 1.0);
}

TEST_F(EdgeInferenceTest, WeightZeroForEmptyHistory) {
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  EXPECT_DOUBLE_EQ(inferencer_.Weight(graph_.edge(e)), 0.0);
}

TEST_F(EdgeInferenceTest, PositiveAlphaFavorsRecentBits) {
  EdgeId recent = graph_.AddEdge(kCaseA, kItem);
  EdgeId old = graph_.AddEdge(kCaseB, kItem);
  // Same popcount; `recent` has the co-location most recently.
  PushHistory(graph_.edge(recent), {false, false, true});
  PushHistory(graph_.edge(old), {true, false, false});
  params_.alpha = 1.0;
  EXPECT_GT(inferencer_.Weight(graph_.edge(recent)),
            inferencer_.Weight(graph_.edge(old)));
  // With alpha = 0 they weigh the same.
  params_.alpha = 0.0;
  EXPECT_DOUBLE_EQ(inferencer_.Weight(graph_.edge(recent)),
                   inferencer_.Weight(graph_.edge(old)));
}

TEST_F(EdgeInferenceTest, ConfidenceBlendsConfirmationAndHistory) {
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(e), {true, true, false, false});  // w = 0.5.
  Node& item = *graph_.FindNode(kItem);
  params_.beta = 0.4;
  // Unconfirmed: confidence = beta * w.
  EXPECT_NEAR(inferencer_.Confidence(graph_.edge(e), item), 0.2, 1e-12);
  // Confirmed: + (1 - beta).
  item.confirmed.parent = kCaseA;
  item.confirmed.confirmed_at = 1;
  EXPECT_NEAR(inferencer_.Confidence(graph_.edge(e), item), 0.8, 1e-12);
}

TEST_F(EdgeInferenceTest, ConfirmedEdgeBeatsBetterHistory) {
  EdgeId confirmed = graph_.AddEdge(kCaseA, kItem);
  EdgeId rival = graph_.AddEdge(kCaseB, kItem);
  PushHistory(graph_.edge(confirmed), {true, false, false, false});  // 0.25.
  PushHistory(graph_.edge(rival), {true, true, true, true});         // 1.0.
  Node& item = *graph_.FindNode(kItem);
  item.confirmed.parent = kCaseA;
  item.confirmed.confirmed_at = 1;
  params_.beta = 0.4;
  inferencer_.BeginPass();
  EdgeInferenceResult result = inferencer_.InferAt(item);
  EXPECT_EQ(result.best_parent, kCaseA);  // 0.6 + 0.1 > 0.4.
}

TEST_F(EdgeInferenceTest, HighBetaLetsHistoryOutweighConfirmation) {
  EdgeId confirmed = graph_.AddEdge(kCaseA, kItem);
  EdgeId rival = graph_.AddEdge(kCaseB, kItem);
  PushHistory(graph_.edge(confirmed), {false, false, false, false});
  PushHistory(graph_.edge(rival), {true, true, true, true});
  Node& item = *graph_.FindNode(kItem);
  item.confirmed.parent = kCaseA;
  item.confirmed.confirmed_at = 1;
  params_.beta = 0.9;  // Recent history dominates.
  inferencer_.BeginPass();
  EXPECT_EQ(inferencer_.InferAt(item).best_parent, kCaseB);
}

TEST_F(EdgeInferenceTest, ProbabilitiesNormalize) {
  graph_.AddEdge(kCaseA, kItem);
  graph_.AddEdge(kCaseB, kItem);
  Node& item = *graph_.FindNode(kItem);
  PushHistory(graph_.edge(item.parent_edges[0]), {true, true});
  PushHistory(graph_.edge(item.parent_edges[1]), {true, false});
  inferencer_.BeginPass();
  inferencer_.InferAt(item);
  double total = inferencer_.ProbabilityOf(item.parent_edges[0]) +
                 inferencer_.ProbabilityOf(item.parent_edges[1]);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_F(EdgeInferenceTest, NoParentsNoResult) {
  graph_.GetOrCreateNode(kItem);
  inferencer_.BeginPass();
  EdgeInferenceResult result = inferencer_.InferAt(*graph_.FindNode(kItem));
  EXPECT_EQ(result.best_edge, kNoEdge);
  EXPECT_EQ(result.best_parent, kNoObject);
}

TEST_F(EdgeInferenceTest, ZeroEvidenceFallsBackToUniform) {
  graph_.AddEdge(kCaseA, kItem);
  graph_.AddEdge(kCaseB, kItem);
  Node& item = *graph_.FindNode(kItem);
  inferencer_.BeginPass();
  EdgeInferenceResult result = inferencer_.InferAt(item);
  EXPECT_NEAR(result.best_prob, 0.5, 1e-12);
}

TEST_F(EdgeInferenceTest, CollectsPrunableEdges) {
  EdgeId weak = graph_.AddEdge(kCaseA, kItem);
  EdgeId strong = graph_.AddEdge(kCaseB, kItem);
  PushHistory(graph_.edge(weak), {true, false, false, false});   // conf 0.1.
  PushHistory(graph_.edge(strong), {true, true, true, true});    // conf 0.4.
  params_.beta = 0.4;
  params_.prune_threshold = 0.25;
  inferencer_.BeginPass();
  std::vector<EdgeId> prunable;
  inferencer_.InferAt(*graph_.FindNode(kItem), &prunable);
  ASSERT_EQ(prunable.size(), 1u);
  EXPECT_EQ(prunable[0], weak);
}

TEST_F(EdgeInferenceTest, PruningDisabledByNonPositiveThreshold) {
  EdgeId weak = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(weak), {false, false});
  params_.prune_threshold = 0.0;
  inferencer_.BeginPass();
  std::vector<EdgeId> prunable;
  inferencer_.InferAt(*graph_.FindNode(kItem), &prunable);
  EXPECT_TRUE(prunable.empty());
}

TEST_F(EdgeInferenceTest, AdaptiveBetaTracksConflictRatio) {
  Node& item = graph_.GetOrCreateNode(kItem);
  params_.adaptive_beta = true;
  params_.beta = 0.4;
  // No confirmation: fall back to the static beta.
  EXPECT_DOUBLE_EQ(inferencer_.EffectiveBeta(item), 0.4);
  item.confirmed.parent = kCaseA;
  item.confirmed.confirmed_at = 1;
  // Fresh confirmation, no observations yet: full trust (beta = 0).
  EXPECT_DOUBLE_EQ(inferencer_.EffectiveBeta(item), 0.0);
  item.confirmed.observations = 10;
  item.confirmed.conflicts = 3;
  EXPECT_DOUBLE_EQ(inferencer_.EffectiveBeta(item), 0.3);
  params_.adaptive_beta = false;
  EXPECT_DOUBLE_EQ(inferencer_.EffectiveBeta(item), 0.4);
}

// -------------------------------------------------------- Node inference --

class NodeInferenceTest : public ::testing::Test {
 protected:
  NodeInferenceTest()
      : edges_(&graph_, &params_), nodes_(&graph_, &params_, &edges_) {
    graph_.BeginEpoch(1);
  }

  /// Pass colors that only know colors observed this epoch (no committed
  /// wave estimates).
  PassColors ObservedOnly() { return PassColors{&graph_}; }

  Graph graph_{8};
  InferenceParams params_;
  EdgeInferencer edges_;
  NodeInferencer nodes_;
};

TEST_F(NodeInferenceTest, FreshColorWinsOverUnknown) {
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  graph_.BeginEpoch(2);
  // Seen one epoch ago: fade = 1, unknown mass = 0.
  NodeInferenceResult result = nodes_.InferAt(item, 2, ObservedOnly());
  EXPECT_EQ(result.location, 5);
}

TEST_F(NodeInferenceTest, StaleColorLosesToUnknown) {
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  params_.theta = 1.25;
  params_.gamma = 0.4;
  graph_.BeginEpoch(100);
  // fade = 1/99^1.25 ~ 0.003: the unknown color dominates.
  NodeInferenceResult result = nodes_.InferAt(item, 100, ObservedOnly());
  EXPECT_EQ(result.location, kUnknownLocation);
}

TEST_F(NodeInferenceTest, ThetaControlsFadeRate) {
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  graph_.BeginEpoch(4);  // Age 3.
  params_.gamma = 0.0;
  params_.theta = 0.1;  // Slow fade: 3^-0.1 ~ 0.896 > 0.5.
  EXPECT_EQ(nodes_.InferAt(item, 4, ObservedOnly()).location, 5);
  params_.theta = 3.0;  // Fast fade: 3^-3 ~ 0.037.
  EXPECT_EQ(nodes_.InferAt(item, 4, ObservedOnly()).location,
            kUnknownLocation);
}

TEST_F(NodeInferenceTest, ContainmentPropagatesColor) {
  // The item was last seen long ago, but its (confirmed) case is observed:
  // with enough gamma the case's color wins.
  graph_.GetOrCreateNode(kCaseA);
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(e), {true, true, true});
  graph_.BeginEpoch(200);
  Node& case_node = *graph_.FindNode(kCaseA);
  graph_.ColorNode(case_node, 7);

  params_.gamma = 0.4;
  params_.theta = 1.25;
  edges_.BeginPass();
  edges_.InferAt(item);  // Fill edge probabilities.
  NodeInferenceResult result = nodes_.InferAt(item, 200, ObservedOnly());
  // Propagated: 0.4 * 1.0 = 0.4; unknown: 0.6 * (1 - ~0) ~ 0.6. Unknown
  // still wins at gamma 0.4 — conflict resolution would fix this via the
  // containment. With a higher gamma the propagation wins outright.
  params_.gamma = 0.7;
  result = nodes_.InferAt(item, 200, ObservedOnly());
  EXPECT_EQ(result.location, 7);
}

TEST_F(NodeInferenceTest, GammaZeroIgnoresNeighbors) {
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(e), {true});
  graph_.BeginEpoch(50);
  graph_.ColorNode(*graph_.FindNode(kCaseA), 7);
  params_.gamma = 0.0;
  edges_.BeginPass();
  edges_.InferAt(item);
  NodeInferenceResult result = nodes_.InferAt(item, 50, ObservedOnly());
  EXPECT_NE(result.location, 7);
}

TEST_F(NodeInferenceTest, ColorPropagatesFromChildrenToo) {
  // A case whose items are observed gains the items' color (this is how
  // SPIRE recovers a container's location from its contents).
  Node& case_node = graph_.GetOrCreateNode(kCaseA);
  graph_.ColorNode(case_node, 3);
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  PushHistory(graph_.edge(e), {true, true});
  graph_.BeginEpoch(300);
  graph_.ColorNode(*graph_.FindNode(kItem), 9);
  params_.gamma = 0.5;
  edges_.BeginPass();
  edges_.InferAt(*graph_.FindNode(kItem));
  NodeInferenceResult result =
      nodes_.InferAt(case_node, 300, ObservedOnly());
  EXPECT_EQ(result.location, 9);
}

TEST_F(NodeInferenceTest, DistributionNormalized) {
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  graph_.BeginEpoch(3);
  NodeInferenceResult result = nodes_.InferAt(item, 3, ObservedOnly());
  EXPECT_GT(result.probability, 0.0);
  EXPECT_LE(result.probability, 1.0);
}

TEST_F(NodeInferenceTest, MultipleNeighborsSplitTheGammaMass) {
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  EdgeId ea = graph_.AddEdge(kCaseA, kItem);
  EdgeId eb = graph_.AddEdge(kCaseB, kItem);
  PushHistory(graph_.edge(ea), {true, true, true});   // Stronger.
  PushHistory(graph_.edge(eb), {true, false, false});
  graph_.BeginEpoch(400);
  graph_.ColorNode(*graph_.FindNode(kCaseA), 7);
  graph_.ColorNode(*graph_.FindNode(kCaseB), 8);
  params_.gamma = 1.0;
  edges_.BeginPass();
  edges_.InferAt(item);
  NodeInferenceResult result = nodes_.InferAt(item, 400, ObservedOnly());
  EXPECT_EQ(result.location, 7);  // The stronger edge's color wins.
}

// ------------------------------------------------------------- Schedule ---

TEST(ScheduleTest, CompleteEveryLcmEpochs) {
  InferenceSchedule schedule(10);
  EXPECT_TRUE(schedule.IsCompleteEpoch(0));
  EXPECT_FALSE(schedule.IsCompleteEpoch(5));
  EXPECT_TRUE(schedule.IsCompleteEpoch(20));
}

TEST(ScheduleTest, AlwaysCompleteWhenAllReadersFast) {
  InferenceSchedule schedule(1);
  for (Epoch e = 0; e < 5; ++e) EXPECT_TRUE(schedule.IsCompleteEpoch(e));
}

TEST(ScheduleTest, FromRegistryUsesPeriodLcm) {
  ReaderRegistry registry;
  LocationId a = registry.AddLocation("a");
  LocationId b = registry.AddLocation("b");
  ReaderInfo fast;
  fast.id = 0;
  fast.location = a;
  fast.period_epochs = 1;
  ReaderInfo slow;
  slow.id = 1;
  slow.location = b;
  slow.period_epochs = 60;
  ASSERT_TRUE(registry.AddReader(fast).ok());
  ASSERT_TRUE(registry.AddReader(slow).ok());
  EXPECT_EQ(InferenceSchedule::FromRegistry(registry).period_lcm(), 60);
}

// ---------------------------------------------------- Iterative inference --

class IterativeTest : public ::testing::Test {
 protected:
  IterativeTest() : inference_(&graph_, params_) {}

  Graph graph_{8};
  InferenceParams params_;
  IterativeInference inference_{&graph_, params_};
};

TEST_F(IterativeTest, ObservedNodesKeepTheirColors) {
  graph_.BeginEpoch(1);
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  InferenceResult result = inference_.RunComplete(1);
  ASSERT_TRUE(result.estimates.contains(kItem));
  const ObjectEstimate& estimate = result.estimates.at(kItem);
  EXPECT_EQ(estimate.location, 5);
  EXPECT_TRUE(estimate.observed);
  EXPECT_EQ(estimate.location_prob, 1.0);
}

TEST_F(IterativeTest, UnobservedNeighborInferredFromColoredNode) {
  graph_.BeginEpoch(1);
  Node& item = graph_.GetOrCreateNode(kItem);
  Node& case_node = graph_.GetOrCreateNode(kCaseA);
  graph_.ColorNode(item, 5);
  graph_.ColorNode(case_node, 5);
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  graph_.edge(e).recent_colocations.Push(true);

  graph_.BeginEpoch(2);
  graph_.ColorNode(*graph_.FindNode(kItem), 5);  // Case missed this epoch.
  InferenceResult result = inference_.RunComplete(2);
  const ObjectEstimate& case_estimate = result.estimates.at(kCaseA);
  EXPECT_FALSE(case_estimate.observed);
  EXPECT_EQ(case_estimate.location, 5);  // Fresh fading color + propagation.
}

TEST_F(IterativeTest, ChainPropagationAcrossWaves) {
  // pallet -> case -> item; only the item is observed. The case is inferred
  // at d=1, then the pallet at d=2 using the case's committed estimate.
  graph_.BeginEpoch(1);
  for (ObjectId id : {kItem, kCaseA, kPallet}) {
    graph_.ColorNode(graph_.GetOrCreateNode(id), 5);
  }
  EdgeId e1 = graph_.AddEdge(kCaseA, kItem);
  EdgeId e2 = graph_.AddEdge(kPallet, kCaseA);
  graph_.edge(e1).recent_colocations.Push(true);
  graph_.edge(e2).recent_colocations.Push(true);

  graph_.BeginEpoch(2);
  graph_.ColorNode(*graph_.FindNode(kItem), 5);
  InferenceResult result = inference_.RunComplete(2);
  EXPECT_EQ(result.estimates.at(kCaseA).location, 5);
  EXPECT_EQ(result.estimates.at(kPallet).location, 5);
}

TEST_F(IterativeTest, IdentifiesMissingObject) {
  graph_.BeginEpoch(1);
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  // Long silence, no edges: the object is most likely away.
  graph_.BeginEpoch(500);
  InferenceResult result = inference_.RunComplete(500);
  const ObjectEstimate& estimate = result.estimates.at(kItem);
  EXPECT_EQ(estimate.location, kUnknownLocation);
  EXPECT_FALSE(estimate.withheld);  // Complete inference reports it.
}

TEST_F(IterativeTest, PartialInferenceWithholdsUnknown) {
  graph_.BeginEpoch(1);
  Node& item = graph_.GetOrCreateNode(kItem);
  Node& case_node = graph_.GetOrCreateNode(kCaseA);
  graph_.ColorNode(item, 5);
  graph_.ColorNode(case_node, 5);
  EdgeId e = graph_.AddEdge(kCaseA, kItem);
  graph_.edge(e).recent_colocations.Push(false);  // Weak evidence.

  graph_.BeginEpoch(300);
  graph_.ColorNode(*graph_.FindNode(kItem), 5);
  InferenceParams no_prune;
  no_prune.prune_threshold = 0.0;  // Keep the weak-evidence edge alive.
  IterativeInference inference(&graph_, no_prune);
  InferenceResult result = inference.RunPartial(300);
  ASSERT_TRUE(result.estimates.contains(kCaseA));
  const ObjectEstimate& estimate = result.estimates.at(kCaseA);
  // The case is stale; partial inference yields "unknown" but withholds it.
  EXPECT_EQ(estimate.location, kUnknownLocation);
  EXPECT_TRUE(estimate.withheld);
  EXPECT_FALSE(result.complete);
}

TEST_F(IterativeTest, PartialInferenceRespectsHopLimit) {
  graph_.BeginEpoch(1);
  for (ObjectId id : {kItem, kCaseA, kPallet}) {
    graph_.ColorNode(graph_.GetOrCreateNode(id), 5);
  }
  graph_.AddEdge(kCaseA, kItem);
  graph_.AddEdge(kPallet, kCaseA);

  graph_.BeginEpoch(2);
  graph_.ColorNode(*graph_.FindNode(kItem), 5);
  InferenceParams params;
  params.partial_hops = 1;
  params.prune_threshold = 0.0;  // Keep the evidence-free edges alive.
  IterativeInference limited(&graph_, params);
  InferenceResult result = limited.RunPartial(2);
  EXPECT_TRUE(result.estimates.contains(kItem));     // d=0.
  EXPECT_TRUE(result.estimates.contains(kCaseA));    // d=1.
  EXPECT_FALSE(result.estimates.contains(kPallet));  // d=2: out of range.
}

TEST_F(IterativeTest, CompleteInferenceCoversUnreachableNodes) {
  graph_.BeginEpoch(1);
  Node& lone = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(lone, 5);
  graph_.BeginEpoch(2);
  // Nothing colored at all: every node is "unreachable".
  InferenceResult result = inference_.RunComplete(2);
  ASSERT_TRUE(result.estimates.contains(kItem));
  EXPECT_EQ(result.estimates.at(kItem).location, 5);  // Fresh fade wins.
}

TEST_F(IterativeTest, PruningRemovesWeakEdgesDuringInference) {
  graph_.BeginEpoch(1);
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  EdgeId weak = graph_.AddEdge(kCaseA, kItem);
  EdgeId strong = graph_.AddEdge(kCaseB, kItem);
  for (int i = 0; i < 8; ++i) {
    graph_.edge(weak).recent_colocations.Push(false);
    graph_.edge(strong).recent_colocations.Push(true);
  }
  InferenceResult result = inference_.RunComplete(1);
  EXPECT_GE(result.edges_pruned, 1u);
  EXPECT_FALSE(graph_.edge(weak).alive);
  EXPECT_TRUE(graph_.edge(strong).alive);
  EXPECT_EQ(result.estimates.at(kItem).container, kCaseB);
}

TEST_F(IterativeTest, AllEdgesPrunedMeansNoContainer) {
  graph_.BeginEpoch(1);
  Node& item = graph_.GetOrCreateNode(kItem);
  graph_.ColorNode(item, 5);
  EdgeId weak = graph_.AddEdge(kCaseA, kItem);
  for (int i = 0; i < 8; ++i) graph_.edge(weak).recent_colocations.Push(false);
  InferenceResult result = inference_.RunComplete(1);
  EXPECT_EQ(result.estimates.at(kItem).container, kNoObject);
  EXPECT_EQ(graph_.NumEdges(), 0u);
}

// ---------------------------------------------------- Conflict resolution --

ObjectEstimate MakeEstimate(ObjectId object, LocationId location,
                            ObjectId container, bool observed) {
  ObjectEstimate estimate;
  estimate.object = object;
  estimate.location = location;
  estimate.location_prob = observed ? 1.0 : 0.6;
  estimate.container = container;
  estimate.container_prob = container == kNoObject ? 0.0 : 0.9;
  estimate.observed = observed;
  return estimate;
}

TEST(ConflictTest, RuleIObservedParentOverridesInferredChild) {
  InferenceResult result;
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 7, kNoObject, true);
  result.estimates[kItem] = MakeEstimate(kItem, 5, kCaseA, false);
  ConflictStats stats = ResolveConflicts(&result);
  EXPECT_EQ(stats.children_overridden, 1u);
  EXPECT_EQ(result.estimates.at(kItem).location, 7);
  EXPECT_EQ(result.estimates.at(kItem).container, kCaseA);
}

TEST(ConflictTest, RuleIIMajorityVoteRepositionsParent) {
  InferenceResult result;
  ObjectId i1 = Obj(PackagingLevel::kItem, 10);
  ObjectId i2 = Obj(PackagingLevel::kItem, 11);
  ObjectId i3 = Obj(PackagingLevel::kItem, 12);
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 3, kNoObject, false);
  result.estimates[i1] = MakeEstimate(i1, 7, kCaseA, true);
  result.estimates[i2] = MakeEstimate(i2, 7, kCaseA, true);
  result.estimates[i3] = MakeEstimate(i3, 3, kCaseA, true);
  ConflictStats stats = ResolveConflicts(&result);
  EXPECT_EQ(stats.parents_repositioned, 1u);
  EXPECT_EQ(result.estimates.at(kCaseA).location, 7);
  // The minority observed child ends its containment (Rule II).
  EXPECT_EQ(stats.containments_ended, 1u);
  EXPECT_EQ(result.estimates.at(i3).container, kNoObject);
}

TEST(ConflictTest, RuleIINoMajorityLeavesParentAndEndsConflicts) {
  InferenceResult result;
  ObjectId i1 = Obj(PackagingLevel::kItem, 10);
  ObjectId i2 = Obj(PackagingLevel::kItem, 11);
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 3, kNoObject, false);
  result.estimates[i1] = MakeEstimate(i1, 7, kCaseA, true);
  result.estimates[i2] = MakeEstimate(i2, 8, kCaseA, true);
  ConflictStats stats = ResolveConflicts(&result);
  EXPECT_EQ(stats.parents_repositioned, 0u);
  EXPECT_EQ(result.estimates.at(kCaseA).location, 3);
  EXPECT_EQ(stats.containments_ended, 2u);
}

TEST(ConflictTest, RuleIIIInferredChildFollowsParent) {
  InferenceResult result;
  ObjectId i1 = Obj(PackagingLevel::kItem, 10);
  ObjectId i2 = Obj(PackagingLevel::kItem, 11);
  ObjectId i3 = Obj(PackagingLevel::kItem, 12);
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 3, kNoObject, false);
  result.estimates[i1] = MakeEstimate(i1, 7, kCaseA, true);
  result.estimates[i2] = MakeEstimate(i2, 7, kCaseA, true);
  result.estimates[i3] = MakeEstimate(i3, 3, kCaseA, false);  // Inferred.
  ResolveConflicts(&result);
  // Parent moved to 7; the inferred child follows rather than ending.
  EXPECT_EQ(result.estimates.at(kCaseA).location, 7);
  EXPECT_EQ(result.estimates.at(i3).location, 7);
  EXPECT_EQ(result.estimates.at(i3).container, kCaseA);
}

TEST(ConflictTest, ProcessesParentsTopDown) {
  // pallet (observed, loc 9) -> case (inferred, loc 5) -> item (inferred,
  // loc 5): Rule I fixes the case first, then the case fixes the item.
  InferenceResult result;
  result.estimates[kPallet] = MakeEstimate(kPallet, 9, kNoObject, true);
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 5, kPallet, false);
  result.estimates[kItem] = MakeEstimate(kItem, 5, kCaseA, false);
  ResolveConflicts(&result);
  EXPECT_EQ(result.estimates.at(kCaseA).location, 9);
  EXPECT_EQ(result.estimates.at(kItem).location, 9);
}

TEST(ConflictTest, AgreementIsUntouched) {
  InferenceResult result;
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 7, kNoObject, true);
  result.estimates[kItem] = MakeEstimate(kItem, 7, kCaseA, false);
  ConflictStats stats = ResolveConflicts(&result);
  EXPECT_EQ(stats.children_overridden, 0u);
  EXPECT_EQ(stats.containments_ended, 0u);
  EXPECT_EQ(stats.parents_repositioned, 0u);
}

TEST(ConflictTest, MissingParentEstimateSkipsFamily) {
  InferenceResult result;
  result.estimates[kItem] = MakeEstimate(kItem, 5, kCaseA, false);
  // kCaseA has no estimate (e.g. outside the partial-inference radius).
  ConflictStats stats = ResolveConflicts(&result);
  EXPECT_EQ(stats.children_overridden, 0u);
  EXPECT_EQ(result.estimates.at(kItem).location, 5);
}

TEST(ConflictTest, WithheldParentSkipsResolution) {
  InferenceResult result;
  ObjectEstimate parent = MakeEstimate(kCaseA, kUnknownLocation, kNoObject,
                                       false);
  parent.withheld = true;
  result.estimates[kCaseA] = parent;
  result.estimates[kItem] = MakeEstimate(kItem, 5, kCaseA, false);
  ResolveConflicts(&result);
  EXPECT_EQ(result.estimates.at(kItem).location, 5);
}

TEST(ConflictTest, MissingIsNotAConflict) {
  // Missing events nest inside containment pairs (Section V-A): a missing
  // child keeps both its verdict and its containment — that is how objects
  // that silently vanish from their containers are detected — and a missing
  // parent exerts no location priority over its children.
  InferenceResult result;
  ObjectId i1 = Obj(PackagingLevel::kItem, 10);
  result.estimates[kCaseA] = MakeEstimate(kCaseA, 7, kNoObject, true);
  result.estimates[i1] =
      MakeEstimate(i1, kUnknownLocation, kCaseA, false);  // Vanished item.
  ResolveConflicts(&result);
  EXPECT_EQ(result.estimates.at(i1).location, kUnknownLocation);
  EXPECT_EQ(result.estimates.at(i1).container, kCaseA);

  InferenceResult parent_missing;
  parent_missing.estimates[kCaseA] =
      MakeEstimate(kCaseA, kUnknownLocation, kNoObject, false);
  parent_missing.estimates[i1] = MakeEstimate(i1, 5, kCaseA, false);
  ConflictStats stats = ResolveConflicts(&parent_missing);
  EXPECT_EQ(parent_missing.estimates.at(i1).location, 5);
  // One voting child forms a majority and repositions the missing parent.
  EXPECT_EQ(stats.parents_repositioned, 1u);
  EXPECT_EQ(parent_missing.estimates.at(kCaseA).location, 5);
}

}  // namespace
}  // namespace spire
