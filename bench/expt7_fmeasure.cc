// Expt 7 (Fig. 11(a)): accuracy of the output event stream — F-measure of
// SPIRE versus the SMURF baseline across read rates. Only object location
// events are compared (SMURF has no containment notion); SPIRE's
// containment-event accuracy is reported separately for reference.
//
//   ./expt7_fmeasure [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = PaperOutputConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 7: output event accuracy, SPIRE vs SMURF", "Fig. 11(a)");

  TextTable table({"read rate", "SPIRE F", "SPIRE P", "SPIRE R", "SMURF F",
                   "SMURF P", "SMURF R", "SPIRE cont. F"});
  for (double read_rate : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    SimConfig sim = base;
    sim.read_rate = read_rate;

    RunOptions spire_options;
    spire_options.sim = sim;
    spire_options.pipeline.level = CompressionLevel::kLevel1;
    RunMetrics spire_metrics = RunSpireTrace(spire_options);
    RunMetrics smurf_metrics = RunSmurfTrace(sim);

    table.AddRow({TextTable::Num(read_rate, 2),
                  TextTable::Num(spire_metrics.f_location.FMeasure(), 4),
                  TextTable::Num(spire_metrics.f_location.Precision(), 4),
                  TextTable::Num(spire_metrics.f_location.Recall(), 4),
                  TextTable::Num(smurf_metrics.f_location.FMeasure(), 4),
                  TextTable::Num(smurf_metrics.f_location.Precision(), 4),
                  TextTable::Num(smurf_metrics.f_location.Recall(), 4),
                  TextTable::Num(spire_metrics.f_all.FMeasure(), 4)});
  }
  table.Print();
  std::printf("\n(location events only for the SPIRE/SMURF columns; the last"
              " column is SPIRE's all-event F-measure)\n");
  return 0;
}
