// Runtime observability of the serving layer.
//
// Every counter is a relaxed atomic so shard threads record without locks;
// the registry is sized once at server construction and never reallocates,
// so readers may sample it live (numbers are individually consistent, not
// a snapshot). `Metrics::ToJson` renders the whole registry as one JSON
// object — the payload behind `spire_cli serve --stats` and the shutdown
// dump (schema in DESIGN.md §8).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spire::serve {

/// Fixed-bucket latency histogram: bucket i counts samples whose duration
/// in microseconds lies in [2^i, 2^(i+1)). Quantiles report the bucket's
/// upper bound, so they over- rather than under-state latency.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  /// Records one duration (negative durations clamp to 1 us).
  void Record(double seconds);

  std::uint64_t count() const;
  double mean_us() const;
  double max_us() const;
  /// Upper bound of the bucket holding quantile `q` in [0, 1]; 0 when empty.
  double QuantileUs(double q) const;

  /// {"count":..,"mean_us":..,"p50_us":..,"p95_us":..,"p99_us":..,"max_us":..}
  std::string ToJson() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Health counters of one bounded queue.
struct QueueMetrics {
  /// Highest depth ever observed at push time.
  std::atomic<std::uint64_t> depth_highwater{0};
  /// Pushes that found the queue full and had to block (backpressure).
  std::atomic<std::uint64_t> blocked_pushes{0};
  /// Pops that found the queue empty and had to block.
  std::atomic<std::uint64_t> blocked_pops{0};
  /// TryPush calls rejected on a full queue.
  std::atomic<std::uint64_t> dropped{0};

  /// Folds a depth observation into the high-water mark.
  void RecordDepth(std::uint64_t depth);

  std::string ToJson() const;
};

/// Per-shard pipeline counters.
struct ShardMetrics {
  std::atomic<std::uint64_t> epochs{0};    ///< Epoch rounds processed.
  std::atomic<std::uint64_t> events{0};    ///< Output events emitted.
  std::atomic<std::uint64_t> readings{0};  ///< Raw readings consumed.
  std::atomic<std::uint64_t> busy_us{0};   ///< Time spent inside pipelines.
  /// Wall time of one epoch round across all of the shard's sites.
  LatencyHistogram process_latency;
  QueueMetrics input_queue;
  QueueMetrics output_queue;

  /// Epoch rounds per busy second (0 when idle).
  double EpochsPerBusySecond() const;
};

/// Merger-side counters.
struct MergerMetrics {
  std::atomic<std::uint64_t> epochs_merged{0};
  std::atomic<std::uint64_t> events_out{0};
  /// Time the merger spent blocked waiting for shard batches.
  std::atomic<std::uint64_t> wait_us{0};
};

/// The serving layer's metrics registry: one ShardMetrics per shard plus
/// the merger. Allocated once; pointers into it stay valid for the
/// registry's lifetime.
class Metrics {
 public:
  explicit Metrics(int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardMetrics& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const ShardMetrics& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }
  MergerMetrics& merger() { return merger_; }
  const MergerMetrics& merger() const { return merger_; }

  /// Renders the registry. `wall_seconds` is the run's wall-clock duration
  /// (drives the aggregate epochs/s figure); pass 0 for a live sample.
  std::string ToJson(double wall_seconds, int num_sites) const;

 private:
  // unique_ptr keeps the atomics' addresses stable (vector growth would
  // copy, and atomics are not copyable anyway).
  std::vector<std::unique_ptr<ShardMetrics>> shards_;
  MergerMetrics merger_;
};

}  // namespace spire::serve
