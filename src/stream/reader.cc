#include "stream/reader.h"

#include <algorithm>
#include <numeric>

namespace spire {

const char* ToString(ReaderType type) {
  switch (type) {
    case ReaderType::kEntryDoor:
      return "entry_door";
    case ReaderType::kReceivingBelt:
      return "receiving_belt";
    case ReaderType::kShelf:
      return "shelf";
    case ReaderType::kPackaging:
      return "packaging";
    case ReaderType::kOutgoingBelt:
      return "outgoing_belt";
    case ReaderType::kExitDoor:
      return "exit_door";
    case ReaderType::kMobile:
      return "mobile";
  }
  return "invalid";
}

Status ReaderRegistry::AddReader(const ReaderInfo& info) {
  if (info.period_epochs < 1) {
    return Status::InvalidArgument("reader period must be >= 1 epoch");
  }
  if (info.id != readers_.size()) {
    return Status::InvalidArgument(
        "reader ids must be assigned densely in registration order");
  }
  if (info.location >= location_names_.size()) {
    return Status::InvalidArgument("reader references unregistered location");
  }
  readers_.push_back(info);
  return Status::OK();
}

LocationId ReaderRegistry::AddLocation(const std::string& name) {
  location_names_.push_back(name);
  return static_cast<LocationId>(location_names_.size() - 1);
}

Result<ReaderInfo> ReaderRegistry::GetReader(ReaderId id) const {
  if (id >= readers_.size()) {
    return Status::NotFound("unknown reader id");
  }
  return readers_[id];
}

LocationId ReaderRegistry::LocationOf(ReaderId id) const {
  if (id >= readers_.size()) return kUnknownLocation;
  return readers_[id].location;
}

Status ReaderRegistry::SetPatrol(ReaderId id, std::vector<LocationId> route,
                                 Epoch dwell) {
  if (id >= readers_.size()) return Status::NotFound("unknown reader id");
  if (dwell < 1) return Status::InvalidArgument("patrol dwell must be >= 1");
  for (LocationId stop : route) {
    if (stop >= location_names_.size()) {
      return Status::InvalidArgument("patrol stop is not a location");
    }
  }
  if (route.empty()) {
    patrols_.erase(id);
    return Status::OK();
  }
  patrols_[id] = Patrol{std::move(route), dwell};
  return Status::OK();
}

LocationId ReaderRegistry::LocationAt(ReaderId id, Epoch epoch) const {
  auto it = patrols_.find(id);
  if (it == patrols_.end() || epoch < 0) return LocationOf(id);
  const Patrol& patrol = it->second;
  auto stop = static_cast<std::size_t>(
      (epoch / patrol.dwell) % static_cast<Epoch>(patrol.route.size()));
  return patrol.route[stop];
}

const std::vector<LocationId>& ReaderRegistry::PatrolRouteOf(
    ReaderId id) const {
  static const std::vector<LocationId> kEmpty;
  auto it = patrols_.find(id);
  return it == patrols_.end() ? kEmpty : it->second.route;
}

Epoch ReaderRegistry::PatrolDwellOf(ReaderId id) const {
  auto it = patrols_.find(id);
  return it == patrols_.end() ? 0 : it->second.dwell;
}

std::string ReaderRegistry::LocationName(LocationId id) const {
  if (id == kUnknownLocation) return "unknown";
  if (id >= location_names_.size()) return "invalid";
  return location_names_[id];
}

bool ReaderRegistry::ReadsInEpoch(ReaderId id, Epoch epoch) const {
  if (id >= readers_.size()) return false;
  return epoch % readers_[id].period_epochs == 0;
}

std::vector<Epoch> LocationPeriods(const ReaderRegistry& registry) {
  std::vector<Epoch> periods;
  auto update = [&periods](LocationId location, Epoch period) {
    if (location >= periods.size()) periods.resize(location + 1, 1);
    Epoch& slot = periods[location];
    slot = slot == 1 ? period : std::min(slot, period);
  };
  for (const ReaderInfo& reader : registry.readers()) {
    const std::vector<LocationId>& route = registry.PatrolRouteOf(reader.id);
    if (route.empty()) {
      update(reader.location, reader.period_epochs);
      continue;
    }
    // A patrolling reader revisits each stop once per full cycle.
    Epoch revisit = registry.PatrolDwellOf(reader.id) *
                    static_cast<Epoch>(route.size());
    for (LocationId stop : route) {
      update(stop, std::max(revisit, reader.period_epochs));
    }
  }
  return periods;
}

Epoch ReaderRegistry::PeriodLcm() const {
  Epoch lcm = 1;
  for (const ReaderInfo& reader : readers_) {
    lcm = std::lcm(lcm, reader.period_epochs);
  }
  return lcm;
}

}  // namespace spire
