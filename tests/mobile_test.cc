// Tests for the mobile (patrolling) reader extension — the paper's stated
// future work: readers whose location is a function of the epoch.
#include <gtest/gtest.h>

#include "common/epc.h"
#include "eval/accuracy.h"
#include "graph/update.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"
#include "stream/deployment.h"
#include "stream/reader.h"

namespace spire {
namespace {

ObjectId Obj(std::uint32_t serial) {
  EpcFields fields;
  fields.level = PackagingLevel::kItem;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

class PatrolRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      locations_.push_back(registry_.AddLocation("loc" + std::to_string(i)));
    }
    ReaderInfo mobile;
    mobile.id = 0;
    mobile.location = locations_[0];
    mobile.type = ReaderType::kMobile;
    mobile.name = "patrol";
    ASSERT_TRUE(registry_.AddReader(mobile).ok());
  }

  ReaderRegistry registry_;
  std::vector<LocationId> locations_;
};

TEST_F(PatrolRegistryTest, StaticReaderLocationIsConstant) {
  EXPECT_EQ(registry_.LocationAt(0, 0), locations_[0]);
  EXPECT_EQ(registry_.LocationAt(0, 999), locations_[0]);
  EXPECT_TRUE(registry_.PatrolRouteOf(0).empty());
}

TEST_F(PatrolRegistryTest, PatrolCyclesRoute) {
  ASSERT_TRUE(registry_
                  .SetPatrol(0, {locations_[1], locations_[2], locations_[3]},
                             /*dwell=*/10)
                  .ok());
  EXPECT_EQ(registry_.LocationAt(0, 0), locations_[1]);
  EXPECT_EQ(registry_.LocationAt(0, 9), locations_[1]);
  EXPECT_EQ(registry_.LocationAt(0, 10), locations_[2]);
  EXPECT_EQ(registry_.LocationAt(0, 25), locations_[3]);
  EXPECT_EQ(registry_.LocationAt(0, 30), locations_[1]);  // Wrapped.
  EXPECT_EQ(registry_.PatrolDwellOf(0), 10);
  // The static home location is untouched.
  EXPECT_EQ(registry_.LocationOf(0), locations_[0]);
}

TEST_F(PatrolRegistryTest, PatrolValidation) {
  EXPECT_FALSE(registry_.SetPatrol(9, {locations_[1]}, 5).ok());  // Unknown.
  EXPECT_FALSE(registry_.SetPatrol(0, {locations_[1]}, 0).ok());  // Dwell.
  EXPECT_FALSE(registry_.SetPatrol(0, {LocationId{99}}, 5).ok()); // Stop.
  // An empty route clears the patrol.
  ASSERT_TRUE(registry_.SetPatrol(0, {locations_[1]}, 5).ok());
  ASSERT_TRUE(registry_.SetPatrol(0, {}, 5).ok());
  EXPECT_EQ(registry_.LocationAt(0, 100), locations_[0]);
}

TEST_F(PatrolRegistryTest, LocationPeriodsUsePatrolRevisitInterval) {
  ASSERT_TRUE(
      registry_.SetPatrol(0, {locations_[1], locations_[2]}, 10).ok());
  std::vector<Epoch> periods = LocationPeriods(registry_);
  ASSERT_GT(periods.size(), locations_[2]);
  EXPECT_EQ(periods[locations_[1]], 20);  // 2 stops x 10 epochs.
  EXPECT_EQ(periods[locations_[2]], 20);
}

TEST_F(PatrolRegistryTest, GraphUpdateColorsByPatrolStop) {
  ASSERT_TRUE(
      registry_.SetPatrol(0, {locations_[1], locations_[2]}, 10).ok());
  Graph graph(8);
  GraphUpdater updater(&graph, &registry_);
  ReaderBatch batch;
  batch.reader = 0;
  batch.tags = {Obj(1)};
  updater.BeginEpoch(5);  // Patrol at stop 0 -> locations_[1].
  updater.ApplyReaderBatch(batch);
  EXPECT_EQ(graph.FindNode(Obj(1))->recent_color, locations_[1]);
  updater.BeginEpoch(15);  // Stop 1 -> locations_[2].
  updater.ApplyReaderBatch(batch);
  EXPECT_EQ(graph.FindNode(Obj(1))->recent_color, locations_[2]);
}

TEST_F(PatrolRegistryTest, DeploymentRoundTripsPatrol) {
  ASSERT_TRUE(
      registry_.SetPatrol(0, {locations_[1], locations_[3]}, 25).ok());
  auto parsed = ParseDeployment(SerializeDeployment(registry_));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().PatrolDwellOf(0), 25);
  ASSERT_EQ(parsed.value().PatrolRouteOf(0).size(), 2u);
  EXPECT_EQ(parsed.value().LocationAt(0, 30),
            parsed.value().PatrolRouteOf(0)[1]);
}

TEST(PatrolDeploymentTest, RejectsMalformedPatrols) {
  std::vector<std::string> base{"reader r0 dock mobile 1"};
  auto with = [&](const std::string& line) {
    std::vector<std::string> lines = base;
    lines.push_back(line);
    return ParseDeployment(lines);
  };
  EXPECT_FALSE(with("patrol r0 5").ok());           // No stops.
  EXPECT_FALSE(with("patrol r9 5 dock").ok());      // Unknown reader.
  EXPECT_FALSE(with("patrol r0 5 nowhere").ok());   // Unknown stop.
  EXPECT_TRUE(with("patrol r0 5 dock").ok());
}

TEST(PatrolSimulationTest, PatrolReaderEmitsFromItsCurrentStop) {
  SimConfig config;
  config.duration_epochs = 600;
  config.pallet_interval = 200;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 2;
  config.items_per_case = 3;
  config.mean_shelf_stay = 300;
  config.shelf_period = 60;
  config.num_shelves = 4;
  config.patrol_reader = true;
  config.patrol_dwell = 10;
  auto sim = WarehouseSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  WarehouseSimulator& s = *sim.value();
  ReaderId patrol = s.layout().patrol_reader;
  ASSERT_NE(patrol, kNoReader);
  bool patrol_read_anything = false;
  while (!s.Done()) {
    for (const RfidReading& reading : s.Step()) {
      if (reading.reader != patrol) continue;
      patrol_read_anything = true;
      // Everything the patrol reads is truly at its current stop.
      ASSERT_EQ(s.world().LocationOf(reading.tag),
                s.registry().LocationAt(patrol, s.current_epoch()));
    }
  }
  EXPECT_TRUE(patrol_read_anything);
}

TEST(PatrolSimulationTest, PatrolImprovesShelfFreshness) {
  // With slow shelf readers and a low read rate, a patrolling reader gives
  // the interpretation extra observations: the location error must not get
  // worse, and typically improves markedly.
  SimConfig config;
  config.duration_epochs = 1500;
  config.pallet_interval = 300;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 2;
  config.items_per_case = 4;
  config.mean_shelf_stay = 500;
  config.shelf_period = 60;
  config.num_shelves = 4;
  config.read_rate = 0.6;

  auto run = [&](bool patrol) {
    SimConfig run_config = config;
    run_config.patrol_reader = patrol;
    auto sim = WarehouseSimulator::Create(run_config);
    WarehouseSimulator& s = *sim.value();
    SpirePipeline pipeline(&s.registry(), PipelineOptions{});
    EventStream out;
    AccuracyStats accuracy;
    while (!s.Done()) {
      EpochReadings readings = s.Step();
      pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &out);
      if (pipeline.last_epoch_complete()) {
        accuracy += EvaluateEstimates(pipeline.last_result(), s.world(),
                                      s.layout().entry_door);
      }
    }
    return accuracy.LocationErrorRate();
  };
  double without = run(false);
  double with = run(true);
  EXPECT_LE(with, without + 0.01);
}

}  // namespace
}  // namespace spire
