#include "serve/workload.h"

#include <algorithm>

#include "common/epc.h"

namespace spire::serve {

ObjectId NormalizeTag(int site, ObjectId tag) {
  return PlantEpcSite(site, tag);
}

Status NormalizeWorkload(Workload* workload) {
  if (workload->sites.empty()) {
    return Status::InvalidArgument("workload has no sites");
  }
  if (workload->sites.size() > static_cast<std::size_t>(kMaxSites)) {
    return Status::InvalidArgument(
        "workload has " + std::to_string(workload->sites.size()) +
        " sites; the tag id space fits " + std::to_string(kMaxSites));
  }

  Epoch horizon = 0;
  std::size_t next_location = 0;
  for (std::size_t site = 0; site < workload->sites.size(); ++site) {
    SiteWorkload& s = workload->sites[site];
    horizon = std::max(horizon, static_cast<Epoch>(s.epochs.size()));

    s.location_offset = static_cast<LocationId>(next_location);
    next_location += s.registry.num_locations();
    // kUnknownLocation must stay representable and unshifted.
    if (next_location >= kUnknownLocation) {
      return Status::OutOfRange(
          "combined location spaces overflow LocationId at site " +
          std::to_string(site));
    }

    s.total_readings = 0;
    for (EpochReadings& epoch : s.epochs) {
      s.total_readings += epoch.size();
      for (RfidReading& reading : epoch) {
        if (DecodeEpc(reading.tag).company_prefix > kEpcSitePrefixMask) {
          return Status::InvalidArgument(
              "site " + std::to_string(site) +
              ": company prefix already uses the site bits");
        }
        reading.tag = NormalizeTag(static_cast<int>(site), reading.tag);
      }
    }
  }
  workload->num_epochs = horizon;
  return Status::OK();
}

}  // namespace spire::serve
