// Column-wise delta+varint codec for one archive block.
//
// A block is self-contained: End* events store their reconstructed V_s as a
// duration column, so any block decodes to exact Event values without the
// cross-record open-event state the flat SPEV stream needs. That is what
// makes per-block access paths (time-range and per-object scans) possible.
//
// Payload layout, all columns back to back:
//
//   types      one byte per event (EventType)
//   objects    zigzag varint delta vs the previous event's object id
//   targets    zigzag varint delta; containment events delta against the
//              previous container id, location events against the previous
//              location id (two independent chains, interleaved in event
//              order), since the two id spaces have very different scales
//   epochs     zigzag varint delta of the primary timestamp
//   durations  for End* events only, varint of (V_e - V_s)
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "store/format.h"

namespace spire {

/// Result of encoding one block.
struct EncodedBlock {
  std::vector<std::uint8_t> payload;
  std::uint32_t count = 0;
  Epoch min_epoch = kNeverEpoch;
  Epoch max_epoch = kNeverEpoch;
};

/// Checks that one event is representable in a block: rejects a Start* with
/// a finite end, an End* with end < start or an unreconstructed (negative)
/// start, a Missing whose interval is not a point, and any negative primary
/// timestamp.
Status ValidateArchivable(const Event& event);

/// Encodes `events[first, first+count)` column-wise; every event must pass
/// ValidateArchivable.
Result<EncodedBlock> EncodeBlock(const EventStream& events, std::size_t first,
                                 std::size_t count);

/// Decodes a payload produced by EncodeBlock back into exactly `count`
/// events appended to `out`. Every malformed byte sequence yields a
/// descriptive Corruption status.
Status DecodeBlock(const std::vector<std::uint8_t>& payload,
                   std::uint32_t count, EventStream* out);

}  // namespace spire
