// Conflict resolution between location and containment inference
// (Section IV-E, Table I).
//
// Iterative inference can leave the two endpoints of a chosen containment
// edge with different locations (their colors were inferred in different
// waves). Since a containment relationship — often confirmed by a special
// reader — carries more reliable information than an inferred location, the
// resolution gives priority to containment:
//
//   Rule I   parent observed, child inferred  -> override the child.
//   Rule II  parent inferred, child observed  -> poll all children; adopt a
//            majority location for the parent if one exists; then end the
//            containment of still-conflicting observed children.
//   Rule III parent inferred, child inferred  -> after the majority vote,
//            override still-conflicting inferred children.
//
// Polling requires all children, so this runs as a post-processing step over
// the full inference result (merged into the output path), parents before
// children (higher packaging layers first).
#pragma once

#include <cstddef>

#include "inference/estimate.h"

namespace spire {

/// Counters for observability and tests.
struct ConflictStats {
  std::size_t children_overridden = 0;   ///< Rule I and Rule III overrides.
  std::size_t parents_repositioned = 0;  ///< Majority votes that moved a parent.
  std::size_t containments_ended = 0;    ///< Rule II terminations.
};

/// Resolves all conflicts in `result` in place.
ConflictStats ResolveConflicts(InferenceResult* result);

}  // namespace spire
