// On-disk layout of the block-compressed event archive (see DESIGN.md
// "On-disk formats").
//
// A segment file is:
//
//   file header: kArchiveMagic (4) + u16 version + u16 reserved   = 8 bytes
//   block*:      block header + encoded payload
//
// Block header layout (little-endian). Version 1 headers are 36 bytes,
// version 2 headers are 40: field offsets [0, 32) are identical, version 2
// inserts a codec-id word before the trailing CRC.
//
//   offset  size  field
//   0       4     kArchiveBlockMarker
//   4       4     event count (>= 1)
//   8       8     min epoch (over the events' primary timestamps, >= 0)
//   16      8     max epoch (>= min epoch)
//   24      4     payload size in bytes
//   28      4     CRC-32 of the payload
//   [v2] 32 4     codec id (low byte, see BlockCodec) + 3 reserved zeros
//   32/36   4     CRC-32 of all header bytes before this field
//
// The header CRC makes a torn or overwritten tail detectable before the
// payload size is trusted; the payload CRC catches bit rot inside a block.
// Recovery rule (ArchiveWriter::Open / ArchiveReader scan): blocks are read
// sequentially and the file is logically truncated at the first header or
// payload that fails validation — a crash mid-append loses at most the block
// being written.
//
// Epoch-field semantics: a sealed block always holds >= 1 event and every
// archived event has a primary timestamp >= 0 (ValidateArchivable), so a
// valid header satisfies 0 <= min <= max. The kNeverEpoch sentinel (-1,
// which reads back from the unsigned field as a huge epoch) therefore never
// appears in a valid header; ParseBlockHeader rejects it — and any
// min/max inversion — as corruption rather than letting it defeat the
// BlockMeta::Intersects range-skip test.
//
// The index sidecar (`<segment>.spix`, sparkey-style) is a rebuildable
// cache: kArchiveIndexMagic + u16 version + u16 reserved, u64 covered
// segment bytes, u64 block count, a CRC-32 fingerprint of the last covered
// block header, the block directory (offset, count, codec, min/max epoch),
// per-object posting lists of block indexes, per-location and per-container
// posting lists (index version 3), and a trailing CRC-32 over everything
// after the 8-byte header. A sidecar whose covered size, tail fingerprint,
// or CRC disagrees with the segment is ignored and rebuilt by scanning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/wire.h"
#include "compress/event.h"

namespace spire {

/// Bytes of the segment (and index) file header.
inline constexpr std::size_t kArchiveHeaderBytes = 8;

/// Bytes of one version-1 block header.
inline constexpr std::size_t kBlockHeaderBytesV1 = 36;

/// Bytes of one version-2 block header (adds the codec-id word).
inline constexpr std::size_t kBlockHeaderBytesV2 = 40;

/// Bytes of a block header in a segment of the given format version.
inline constexpr std::size_t BlockHeaderBytes(std::uint16_t version) {
  return version >= kArchiveVersion ? kBlockHeaderBytesV2
                                    : kBlockHeaderBytesV1;
}

/// Upper bound on one block's encoded payload; a header whose payload size
/// exceeds it is treated as a torn tail even if its CRC matches by chance.
inline constexpr std::uint32_t kMaxBlockPayloadBytes = 1u << 28;

/// Per-block payload codec. Version-1 segments carry no codec field and are
/// implicitly kVarint; version-2 blocks name theirs in the header.
enum class BlockCodec : std::uint8_t {
  /// Column-wise zigzag-varint deltas (the original format).
  kVarint = 0,
  /// 128-value miniblocks of bit-packed zigzag deltas with per-miniblock
  /// minimal bit widths (store/bitpack.h).
  kBitpack = 1,
};

/// True for codec ids this build can decode.
inline constexpr bool KnownBlockCodec(std::uint8_t codec) {
  return codec <= static_cast<std::uint8_t>(BlockCodec::kBitpack);
}

const char* ToString(BlockCodec codec);

/// Directory entry of one block: where it lives and what it covers.
struct BlockMeta {
  std::uint64_t offset = 0;  ///< Segment-file offset of the block header.
  std::uint32_t count = 0;   ///< Events in the block.
  BlockCodec codec = BlockCodec::kVarint;  ///< Payload codec.
  Epoch min_epoch = kNeverEpoch;  ///< Smallest primary timestamp.
  Epoch max_epoch = kNeverEpoch;  ///< Largest primary timestamp.

  bool operator==(const BlockMeta&) const = default;

  /// True when the block may hold events with primary timestamps in
  /// [lo, hi] — the time-range scan's skip test. Requires a validated meta
  /// (0 <= min_epoch <= max_epoch; every ingestion path rejects sentinel or
  /// inverted headers), so the test is a plain interval overlap.
  bool Intersects(Epoch lo, Epoch hi) const {
    return min_epoch <= hi && lo <= max_epoch;
  }
};

/// One parsed-and-validated block header.
struct BlockHeader {
  std::uint32_t count = 0;
  BlockCodec codec = BlockCodec::kVarint;
  Epoch min_epoch = 0;
  Epoch max_epoch = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

/// Parses and fully validates one block header of a version-`version`
/// segment from `bytes` (which must hold BlockHeaderBytes(version) bytes):
/// marker, header CRC, count >= 1, payload size bound, known codec, and
/// 0 <= min <= max epoch. Any failure is Corruption — callers treating a
/// failure as a torn tail stop scanning instead of propagating it.
Result<BlockHeader> ParseBlockHeader(const std::uint8_t* bytes,
                                     std::uint16_t version);

/// Serializes a block header (including its CRC) for a version-`version`
/// segment.
void AppendBlockHeader(const BlockHeader& header, std::uint16_t version,
                       std::vector<std::uint8_t>* out);

/// The timestamp a message carries on the wire and the archive orders and
/// indexes by: V_e for End* messages, V_s otherwise (serde.h's rule).
inline Epoch PrimaryEpoch(const Event& event) {
  return (event.type == EventType::kEndLocation ||
          event.type == EventType::kEndContainment)
             ? event.end
             : event.start;
}

}  // namespace spire
