// Expt 11: overhead of the observability layer (DESIGN.md §9).
//
// The obs contract is that a disabled build costs one branch on a pointer
// per instrumented site. This bench runs the same simulated trace through
// the full pipeline three ways — instruments off, instruments on, and
// instruments on with an active trace session plus explain channel — and
// reports wall seconds for each, interleaving the configurations A/B/A/B
// across repetitions so drift hits all arms equally. The number to watch is
// `enabled_over_disabled`: metrics alone should be within noise of off
// (single-digit percent), and full tracing low multiples of that.
//
//   ./expt11_obs [full=true] [reps=N] [key=value ...]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"
#include "obs/explain.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

using namespace spire;
using namespace spire::bench;

namespace {

struct Arm {
  const char* name;
  bool enabled = false;
  bool traced = false;
  std::vector<double> seconds;
};

/// One full pipeline run; returns wall seconds of the processing loop.
double RunOnce(const SimConfig& sim_config, bool enabled, bool traced,
               const std::string& trace_path) {
  obs::SetEnabled(enabled);
  if (traced) {
    Status status = obs::Tracer::Global().Start(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), PipelineOptions{});
  obs::ExplainLog explain;
  if (traced) pipeline.SetExplainSink(&explain);

  EventStream sink;
  const auto start = std::chrono::steady_clock::now();
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &sink);
  }
  pipeline.Finish(s.current_epoch() + 1, &sink);
  const auto end = std::chrono::steady_clock::now();

  if (traced) {
    Status status = obs::Tracer::Global().Stop();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  obs::SetEnabled(false);
  return std::chrono::duration<double>(end - start).count();
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  const bool full = args.GetBool("full", false).value_or(false);
  const int reps =
      static_cast<int>(args.GetInt("reps", full ? 7 : 5).value_or(5));

  SimConfig sim_config = SweepConfig(full);
  auto overridden = SimConfig::FromConfig(args, sim_config);
  if (overridden.ok()) sim_config = overridden.value();

  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "expt11_obs_trace.json")
          .string();

  PrintHeader("Expt 11: observability overhead",
              "DESIGN.md §9 (disabled = one branch on a pointer)");

  Arm arms[] = {{"obs off", false, false, {}},
                {"metrics on", true, false, {}},
                {"metrics+trace+explain", true, true, {}}};
  // Warm-up run (page cache, allocator) discarded.
  RunOnce(sim_config, false, false, trace_path);
  for (int rep = 0; rep < reps; ++rep) {
    for (Arm& arm : arms) {
      arm.seconds.push_back(
          RunOnce(sim_config, arm.enabled, arm.traced, trace_path));
    }
  }
  std::error_code ec;
  std::filesystem::remove(trace_path, ec);

  const double off = Median(arms[0].seconds);
  TextTable table({"configuration", "median (s)", "vs off"});
  BenchReport report("expt11_obs");
  for (const Arm& arm : arms) {
    const double median = Median(arm.seconds);
    table.AddRow({arm.name, TextTable::Num(median, 4),
                  TextTable::Num(off > 0.0 ? median / off : 0.0, 3)});
  }
  table.Print();

  report.Add("reps", reps);
  report.Add("disabled_s", off);
  report.Add("enabled_s", Median(arms[1].seconds));
  report.Add("traced_s", Median(arms[2].seconds));
  report.Add("enabled_over_disabled",
             off > 0.0 ? Median(arms[1].seconds) / off : 0.0);
  report.Add("traced_over_disabled",
             off > 0.0 ? Median(arms[2].seconds) / off : 0.0);
  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
