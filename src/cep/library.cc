#include "cep/library.h"

#include <sstream>

namespace spire::cep {

namespace {

struct NamedExpr {
  const char* name;
  const char* expr;
};

constexpr NamedExpr kLibrary[] = {
    {"theft", "Missing(x)"},
    {"dock_to_exit",
     "SEQ(At(x, entry_door), !At(x, receiving_belt) WITHIN 50, "
     "At(x, exit_door))"},
    {"misrouted_case",
     "SEQ(At(x, entry_door), !At(x, receiving_belt) WITHIN 200, "
     "At(x, shelf_*))"},
    {"shelf_to_exit_direct",
     "SEQ(At(x, shelf_*), !At(x, outgoing_belt) WITHIN 120, "
     "At(x, exit_door))"},
    {"pallet_left_without_case",
     "SEQ(Contains(p, c), At(p, exit_door), !At(c, exit_door) WITHIN 60)"},
    {"flapping_reader",
     "SEQ(At(x, shelf_*), Missing(x) WITHIN 150, At(x, shelf_*) WITHIN 150, "
     "Missing(x) WITHIN 150)"},
    // Flow confirmations: the negated leg is the exception, not the rule,
    // so these fire on healthy traffic and keep the guard-satisfied match
    // path under differential test.
    {"packed_for_shipping",
     "SEQ(At(x, packaging), !At(x, shelf_*) WITHIN 150, "
     "At(x, outgoing_belt))"},
    {"clean_putaway",
     "SEQ(At(x, receiving_belt), !Missing(x) WITHIN 100, At(x, shelf_*))"},
};

std::vector<Pattern> ParseLibrary() {
  std::vector<Pattern> patterns;
  for (const NamedExpr& entry : kLibrary) {
    auto parsed = ParsePattern(entry.expr, entry.name);
    // The expressions are compile-time constants; a parse failure is a
    // programming error surfaced by cep_test, not a runtime condition.
    if (parsed.ok()) patterns.push_back(std::move(parsed).value());
  }
  return patterns;
}

}  // namespace

const std::vector<Pattern>& BuiltinLibrary() {
  static const std::vector<Pattern> library = ParseLibrary();
  return library;
}

Result<Pattern> LibraryPattern(const std::string& name) {
  for (const Pattern& pattern : BuiltinLibrary()) {
    if (pattern.name == name) return pattern;
  }
  return Status::NotFound("no library pattern named '" + name + "'");
}

Result<std::vector<Pattern>> ParsePatternFileLines(const std::string& text) {
  std::vector<Pattern> patterns;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("pattern file line " +
                                     std::to_string(lineno) +
                                     ": expected 'name = expression'");
    }
    std::string name = line.substr(first, eq - first);
    name.erase(name.find_last_not_of(" \t") + 1);
    if (name.empty()) {
      return Status::InvalidArgument("pattern file line " +
                                     std::to_string(lineno) +
                                     ": empty pattern name");
    }
    auto parsed = ParsePattern(line.substr(eq + 1), name);
    if (!parsed.ok()) return parsed.status();
    patterns.push_back(std::move(parsed).value());
  }
  return patterns;
}

}  // namespace spire::cep
