// The spire_fuzz corpus driver: expands seeds into cases, runs the oracle
// battery on each, and on failure minimizes the case and archives a
// replayable repro file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/repro.h"
#include "check/shrink.h"

namespace spire {

/// Driver configuration.
struct FuzzOptions {
  /// Seeds to expand, in order.
  std::vector<std::uint64_t> seeds;
  /// Wall-clock budget in seconds; 0 = run the whole corpus. At least
  /// `min_cases` cases run even when the budget is exhausted, so CI always
  /// gets a meaningful sample.
  double budget_seconds = 0.0;
  std::size_t min_cases = 100;
  /// Directory minimized repro files are written to (created on demand).
  std::string repro_dir = "fuzz-repros";
  /// Candidate executions the shrinker may spend per failure (0 disables
  /// shrinking).
  int shrink_attempts = 150;
  /// Stop after this many distinct failures (each already minimized).
  std::size_t max_failures = 5;
};

/// Aggregate outcome of one driver run.
struct FuzzStats {
  std::size_t cases_run = 0;    ///< Seeds checked.
  std::size_t traces_run = 0;   ///< Pipeline executions (incl. shrinking).
  std::size_t failures = 0;     ///< Oracle violations found.
  double elapsed_seconds = 0.0;
  std::vector<std::string> repro_paths;  ///< One minimized repro per failure.
};

/// Runs the corpus. Progress and failure reports go to `log` (may be null
/// for silence). Returns the aggregate stats; `failures == 0` means the
/// battery was green on every case run.
FuzzStats Fuzz(const FuzzOptions& options, const DifferentialChecker& checker,
               std::FILE* log);

}  // namespace spire
