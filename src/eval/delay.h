// Anomaly-detection delay (Expt 4): how long after a theft the output
// stream first reports the object missing.
#pragma once

#include <cstddef>
#include <vector>

#include "compress/event.h"
#include "sim/simulator.h"

namespace spire {

/// Aggregated detection-delay statistics over a trace's thefts.
struct DelayStats {
  std::size_t thefts = 0;
  std::size_t detected = 0;
  double mean_delay = 0.0;    ///< Mean epochs from theft to Missing event.
  double median_delay = 0.0;
  Epoch max_delay = 0;

  double DetectionRate() const {
    return thefts == 0 ? 0.0
                       : static_cast<double>(detected) /
                             static_cast<double>(thefts);
  }
};

/// For each theft, finds the first Missing event for the stolen object at or
/// after the theft epoch. `horizon` bounds the searched delay (a theft with
/// no Missing event within the horizon counts as undetected).
DelayStats EvaluateDetectionDelay(const std::vector<Theft>& thefts,
                                  const EventStream& output,
                                  Epoch horizon = 3600);

}  // namespace spire
