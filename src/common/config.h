// Tiny key=value configuration store.
//
// Bench binaries and examples accept `key=value` command-line overrides and
// optional config files with one `key = value` pair per line ('#' comments).
// This mirrors the paper's "system configuration file" from which reader
// frequencies are obtained for the partial/complete inference schedule.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace spire {

/// An ordered string-to-string map with typed accessors.
class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines. Blank lines and lines starting with '#'
  /// are skipped. Later keys override earlier ones.
  static Result<Config> FromLines(const std::vector<std::string>& lines);

  /// Parses command-line style `key=value` tokens (argv[1..argc)). Tokens
  /// without '=' are rejected.
  static Result<Config> FromArgs(int argc, const char* const* argv);

  /// Sets or overwrites a key.
  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  /// Typed lookups returning `fallback` when the key is absent. Malformed
  /// values produce an error.
  Result<std::string> GetString(const std::string& key,
                                const std::string& fallback) const;
  Result<std::int64_t> GetInt(const std::string& key,
                              std::int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// All keys in insertion-independent (sorted) order.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace spire
