#include "dist/node.h"

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "obs/registry.h"

namespace spire::dist {

namespace {

struct NodeInstruments {
  obs::Counter* handoffs;
  obs::Histogram* handoff_latency_us;
};

const NodeInstruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const NodeInstruments instruments{
      registry.GetCounter("dist", "handoffs"),
      registry.GetHistogram("dist", "handoff_latency_us"),
  };
  return &instruments;
}

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shifts site-local output locations into the global id space (the same
/// mapping serve's shards and reference runner apply).
void RemapLocations(EventStream* events, LocationId offset) {
  if (offset == 0) return;
  for (Event& event : *events) {
    if (event.location != kUnknownLocation) {
      event.location = static_cast<LocationId>(event.location + offset);
    }
  }
}

/// One hop captured this epoch; lives in a deque so the sink address
/// handed to StageDeparture stays stable.
struct HopCapture {
  CaptureOrder order;
  std::vector<ObjectHandoff> objects;
};

}  // namespace

Status RunDistNode(const NodeConfig& config, Conn* conn) {
  if (config.workload == nullptr) {
    return Status::InvalidArgument("node has no workload");
  }
  const serve::Workload& workload = *config.workload;
  for (int site : config.sites) {
    if (site < 0 || site >= static_cast<int>(workload.sites.size())) {
      return Status::InvalidArgument("node owns out-of-range site");
    }
  }

  std::vector<std::unique_ptr<SpirePipeline>> pipelines;
  pipelines.reserve(config.sites.size());
  for (int site : config.sites) {
    pipelines.push_back(std::make_unique<SpirePipeline>(
        &workload.sites[static_cast<std::size_t>(site)].registry,
        config.pipeline));
  }

  // Hello exchange: announce identity, require a same-version coordinator.
  {
    HelloPayload hello;
    hello.node_id = static_cast<std::uint32_t>(config.node_id);
    for (int site : config.sites) {
      hello.sites.push_back(static_cast<std::uint32_t>(site));
    }
    std::vector<std::uint8_t> payload;
    EncodeHello(hello, &payload);
    SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kHello, payload));

    Frame frame;
    bool eof = false;
    SPIRE_RETURN_NOT_OK(RecvFrame(conn, &frame, &eof));
    if (eof) return Status::Internal("connection closed before hello");
    if (frame.type != FrameType::kHello) {
      return Status::Internal(std::string("expected Hello, got ") +
                              ToString(frame.type));
    }
    Result<HelloPayload> peer = DecodeHello(frame.payload);
    if (!peer.ok()) return peer.status();
  }

  const NodeInstruments* obs = GetInstruments();

  // Handoffs stashed until their (arrival site, arrival epoch) comes up,
  // in arrival (frame) order.
  std::map<std::pair<int, Epoch>, std::deque<HandoffPayload>> stash;

  Epoch next_epoch = 0;
  EventStream scratch;
  for (;;) {
    Frame frame;
    bool eof = false;
    SPIRE_RETURN_NOT_OK(RecvFrame(conn, &frame, &eof));
    if (eof) {
      return Status::Internal("connection closed before finish");
    }

    if (frame.type == FrameType::kHandoff) {
      Result<HandoffPayload> handoff = DecodeHandoff(frame.payload);
      if (!handoff.ok()) return handoff.status();
      const int site = static_cast<int>(handoff.value().to_site);
      stash[{site, handoff.value().arrive_epoch}].push_back(
          std::move(handoff.value()));
      continue;
    }
    if (frame.type != FrameType::kEpochWork) {
      return Status::Internal(std::string("unexpected ") +
                              ToString(frame.type) + " frame");
    }

    Result<EpochWorkPayload> decoded = DecodeEpochWork(frame.payload);
    if (!decoded.ok()) return decoded.status();
    EpochWorkPayload& work = decoded.value();

    if (work.finish) {
      for (std::size_t i = 0; i < config.sites.size(); ++i) {
        const int site = config.sites[i];
        scratch.clear();
        pipelines[i]->Finish(work.epoch, &scratch);
        RemapLocations(
            &scratch,
            workload.sites[static_cast<std::size_t>(site)].location_offset);
        SiteBatchPayload batch;
        batch.epoch = work.epoch;
        batch.site = static_cast<std::uint32_t>(site);
        batch.finish = true;
        batch.events = std::move(scratch);
        std::vector<std::uint8_t> payload;
        EncodeSiteBatch(batch, &payload);
        SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kSiteBatch, payload));
        scratch = std::move(batch.events);
      }
      BarrierPayload barrier;
      barrier.epoch = work.epoch;
      barrier.finish = true;
      std::vector<std::uint8_t> payload;
      EncodeBarrier(barrier, &payload);
      return SendFrame(conn, FrameType::kBarrier, payload);
    }

    if (work.epoch != next_epoch) {
      return Status::Internal("epoch work out of order");
    }
    ++next_epoch;

    std::deque<HopCapture> captured;
    for (std::size_t i = 0; i < config.sites.size(); ++i) {
      const int site = config.sites[i];
      SpirePipeline& pipeline = *pipelines[i];

      // Arrivals first: splice shipped objects in ahead of this epoch.
      auto arrivals = stash.find({site, work.epoch});
      if (arrivals != stash.end()) {
        const std::uint64_t now_us = NowMicros();
        for (const HandoffPayload& handoff : arrivals->second) {
          for (const ObjectHandoff& object : handoff.objects) {
            pipeline.ImplantHandoff(object);
          }
          if (obs != nullptr) {
            obs->handoffs->Add(handoff.objects.size());
            obs->handoff_latency_us->Record(
                now_us > handoff.capture_micros
                    ? now_us - handoff.capture_micros
                    : 0);
          }
        }
        stash.erase(arrivals);
      }

      // Departures: stage this epoch's capture orders for this site.
      for (CaptureOrder& order : work.captures) {
        if (static_cast<int>(order.from_site) != site) continue;
        captured.push_back(HopCapture{std::move(order), {}});
        pipeline.StageDeparture(captured.back().order.objects,
                                &captured.back().objects);
      }

      EpochReadings readings;
      for (auto& [reading_site, site_readings] : work.site_readings) {
        if (static_cast<int>(reading_site) == site) {
          readings = std::move(site_readings);
          break;
        }
      }
      scratch.clear();
      pipeline.ProcessEpoch(work.epoch, std::move(readings), &scratch);
      RemapLocations(
          &scratch,
          workload.sites[static_cast<std::size_t>(site)].location_offset);

      SiteBatchPayload batch;
      batch.epoch = work.epoch;
      batch.site = static_cast<std::uint32_t>(site);
      batch.events = std::move(scratch);
      std::vector<std::uint8_t> payload;
      EncodeSiteBatch(batch, &payload);
      SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kSiteBatch, payload));
      scratch = std::move(batch.events);
    }

    // Ship this epoch's captures, then the barrier.
    for (HopCapture& capture : captured) {
      HandoffPayload handoff;
      handoff.hop = capture.order.hop;
      handoff.to_site = capture.order.to_site;
      handoff.arrive_epoch = capture.order.arrive_epoch;
      handoff.capture_micros = NowMicros();
      handoff.objects = std::move(capture.objects);
      std::vector<std::uint8_t> payload;
      EncodeHandoff(handoff, &payload);
      SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kHandoff, payload));
    }
    BarrierPayload barrier;
    barrier.epoch = work.epoch;
    std::vector<std::uint8_t> payload;
    EncodeBarrier(barrier, &payload);
    SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kBarrier, payload));
  }
}

}  // namespace spire::dist
