// Column-wise codecs for one archive block.
//
// A block is self-contained: End* events store their reconstructed V_s as a
// duration column, so any block decodes to exact Event values without the
// cross-record open-event state the flat SPEV stream needs. That is what
// makes per-block access paths (time-range and per-object scans) possible.
//
// Both codecs share the column model — all columns back to back:
//
//   types      one byte per event (EventType)
//   objects    zigzag delta vs the previous event's object id
//   targets    zigzag delta; containment events delta against the
//              previous container id, location events against the previous
//              location id (two independent chains, interleaved in event
//              order), since the two id spaces have very different scales
//   epochs     zigzag delta of the primary timestamp
//   durations  for End* events only, (V_e - V_s), one entry per End event
//
// Codec 0 (kVarint) writes each numeric column as LEB128 varints — compact,
// but decode is a data-dependent branch per byte. Codec 1 (kBitpack) writes
// each numeric column as 128-value bit-packed miniblocks (store/bitpack.h)
// and appends kBitpackPadBytes zero bytes, decoded by branch-free word
// loads; its column framing is also skippable, so the epoch column can be
// decoded without touching the object/target columns at all
// (DecodeBlockEpochs).
//
// Decoders take (pointer, size) rather than a vector so they can run
// zero-copy over an mmapped segment. Every malformed byte sequence —
// including non-canonical varints, non-minimal bit widths, and nonzero pad
// bytes — yields a descriptive Corruption status.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "store/format.h"

namespace spire {

/// Result of encoding one block.
struct EncodedBlock {
  std::vector<std::uint8_t> payload;
  std::uint32_t count = 0;
  BlockCodec codec = BlockCodec::kVarint;
  Epoch min_epoch = kNeverEpoch;
  Epoch max_epoch = kNeverEpoch;
};

/// Checks that one event is representable in a block: rejects a Start* with
/// a finite end, an End* with end < start or an unreconstructed (negative)
/// start, a Missing whose interval is not a point, and any negative primary
/// timestamp.
Status ValidateArchivable(const Event& event);

/// Encodes `events[first, first+count)` column-wise with `codec`; every
/// event must pass ValidateArchivable.
Result<EncodedBlock> EncodeBlock(const EventStream& events, std::size_t first,
                                 std::size_t count,
                                 BlockCodec codec = BlockCodec::kVarint);

/// Decodes a payload produced by EncodeBlock back into exactly `count`
/// events appended to `out`.
Status DecodeBlock(const std::uint8_t* payload, std::size_t payload_size,
                   std::uint32_t count, BlockCodec codec, EventStream* out);

inline Status DecodeBlock(const std::vector<std::uint8_t>& payload,
                          std::uint32_t count, EventStream* out,
                          BlockCodec codec = BlockCodec::kVarint) {
  return DecodeBlock(payload.data(), payload.size(), count, codec, out);
}

/// Decodes only the primary-timestamp column, appending `count` epochs to
/// `out` — the scan-rate workhorse for epoch-restricted analytics. For
/// kBitpack the object/target columns are skipped structurally (one width
/// byte per 128 values); for kVarint they must still be walked byte by
/// byte, which is exactly the asymmetry bench/expt9_archive measures.
Status DecodeBlockEpochs(const std::uint8_t* payload,
                         std::size_t payload_size, std::uint32_t count,
                         BlockCodec codec, std::vector<Epoch>* out);

}  // namespace spire
