// Unit tests of the observability layer (src/obs): histogram bucket math
// and quantile interpolation, concurrent instrument recording (the
// SPIRE_SANITIZE=thread build makes these real races if they are), trace
// JSON well-formedness, registry dump round-trips, and the explain log's
// JSONL shape.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace spire::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i spans [2^i, 2^(i+1)); sub-1 samples clamp up, huge samples
  // clamp into the last bucket.
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 0);
  EXPECT_EQ(Histogram::BucketOf(2), 1);
  EXPECT_EQ(Histogram::BucketOf(3), 1);
  EXPECT_EQ(Histogram::BucketOf(4), 2);
  EXPECT_EQ(Histogram::BucketOf(7), 2);
  EXPECT_EQ(Histogram::BucketOf(8), 3);
  EXPECT_EQ(Histogram::BucketOf((std::uint64_t{1} << 39) - 1), 38);
  EXPECT_EQ(Histogram::BucketOf(std::uint64_t{1} << 39), 39);
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 16u);

  Histogram histogram;
  histogram.Record(0);  // Clamps to 1.
  histogram.Record(1);
  histogram.Record(2);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.count(), 3u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  // Four samples of 10 all land in bucket 3 = [8, 16): the k-th of c
  // samples reports lower + k/c * width.
  Histogram histogram;
  for (int i = 0; i < 4; ++i) histogram.Record(10);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 12.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 14.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.00), 16.0);
  // q=0 still reports the first sample's position, never a negative rank.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 10.0);
}

TEST(HistogramTest, QuantileCrossesBuckets) {
  Histogram histogram;
  histogram.Record(1);  // Bucket 0 = [1, 2).
  histogram.Record(8);  // Bucket 3 = [8, 16).
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 2.0);   // Top of bucket 0.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 16.0);  // Top of bucket 3.
  EXPECT_DOUBLE_EQ(histogram.mean(), 4.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 8.0);
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  histogram.Record(100);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(HistogramTest, RecordSecondsUsesMicroseconds) {
  Histogram histogram;
  histogram.RecordSeconds(0.001);  // 1000 us -> bucket 9 = [512, 1024).
  EXPECT_EQ(histogram.bucket(9), 1u);
  histogram.RecordSeconds(-1.0);  // Clamps to 1 us.
  EXPECT_EQ(histogram.bucket(0), 1u);
}

TEST(ObsConcurrencyTest, CountersSumAcrossThreads) {
  Counter counter;
  Gauge highwater;
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add(1);
        highwater.SetMax(t * kIters + i);
        histogram.Record(static_cast<std::uint64_t>(i % 1000) + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(highwater.value(), (kThreads - 1) * kIters + kIters - 1);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsConcurrencyTest, RegistryRegistrationIsThreadSafe) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // All threads race to register and bump the same instrument.
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("test", "shared")->Add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("test", "shared")->value(), 8000u);
}

TEST(RegistryTest, StablePointersAndDumps) {
  Registry registry;
  Counter* counter = registry.GetCounter("graph", "edges");
  EXPECT_EQ(registry.GetCounter("graph", "edges"), counter);
  counter->Add(3);
  registry.GetGauge("serve", "depth")->SetMax(7);
  registry.GetHistogram("serve", "latency")->Record(100);
  registry.GetCounter("idle", "nothing");  // Registered but inactive.

  EXPECT_EQ(registry.NumActiveModules(), 2u);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("modules with activity: 2 (graph serve)"),
            std::string::npos);
  EXPECT_NE(text.find("graph.edges 3"), std::string::npos);

  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* modules = parsed.value().Find("modules");
  ASSERT_NE(modules, nullptr);
  ASSERT_EQ(modules->type, JsonValue::Type::kObject);
  EXPECT_EQ(modules->object.size(), 3u);
  const JsonValue* graph = modules->Find("graph");
  ASSERT_NE(graph, nullptr);
  const JsonValue* counters = graph->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* edges = counters->Find("edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->text, "3");

  // parse -> serialize -> parse is the identity (numbers stay verbatim).
  auto round_trip = ParseJson(parsed.value().Serialize());
  ASSERT_TRUE(round_trip.ok());
  EXPECT_EQ(round_trip.value(), parsed.value());

  registry.Reset();
  EXPECT_EQ(registry.NumActiveModules(), 0u);
  EXPECT_EQ(registry.GetCounter("graph", "edges"), counter);
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  ASSERT_FALSE(tracer.active());
  const std::size_t before = tracer.num_events();
  {
    ScopedSpan span("test", "noop", 42);
  }
  EXPECT_EQ(tracer.num_events(), before);
}

TEST(TracerTest, WritesWellFormedChromeTrace) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_trace.json")
          .string();
  Tracer& tracer = Tracer::Global();
  ASSERT_TRUE(tracer.Start(path).ok());
  EXPECT_FALSE(tracer.Start(path).ok());  // Second session rejected.
  {
    ScopedSpan outer("test", "outer", 7);
    ScopedSpan inner("test", "inner");
  }
  std::thread([] { ScopedSpan span("test", "worker", 8); }).join();
  EXPECT_EQ(tracer.num_events(), 3u);
  ASSERT_TRUE(tracer.Stop().ok());
  EXPECT_FALSE(tracer.active());
  EXPECT_EQ(tracer.num_events(), 0u);  // Stop drains the buffer.

  auto parsed = ParseJson(ReadFile(path));
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_EQ(events->array.size(), 3u);

  bool saw_epoch_arg = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->type, JsonValue::Type::kString);
    const JsonValue* phase = event.Find("ph");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->text, "X");
    EXPECT_NE(event.Find("cat"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    const JsonValue* pid = event.Find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_EQ(pid->text, "1");
    const JsonValue* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    // Dense thread ids: the main thread and one worker.
    EXPECT_TRUE(tid->text == "0" || tid->text == "1");
    if (const JsonValue* args = event.Find("args"); args != nullptr) {
      if (args->Find("epoch") != nullptr) saw_epoch_arg = true;
    }
  }
  EXPECT_TRUE(saw_epoch_arg);
}

TEST(ExplainLogTest, JsonlRecordsParse) {
  ExplainLog log;
  EventProvenance provenance;
  provenance.id = 5;
  provenance.type = "StartLocation";
  provenance.object = 42;
  provenance.location = 3;
  provenance.epoch = 17;
  provenance.complete_inference = true;
  provenance.inference_waves = 4;
  provenance.winner_posterior = 0.9;
  provenance.runner_up_posterior = 0.05;
  provenance.stage = "report";
  log.RecordEvent(provenance);
  log.RecordSuppressed(43, 18, 42, "contained");

  auto event_line = ParseJson(ExplainLog::ToJsonLine(log.events()[0]));
  ASSERT_TRUE(event_line.ok()) << event_line.status().ToString();
  EXPECT_EQ(event_line.value().Find("kind")->text, "event");
  EXPECT_EQ(event_line.value().Find("id")->text, "5");
  EXPECT_EQ(event_line.value().Find("type")->text, "StartLocation");
  EXPECT_EQ(event_line.value().Find("complete_inference")->bool_value, true);
  EXPECT_EQ(event_line.value().Find("stage")->text, "report");

  auto suppressed_line =
      ParseJson(ExplainLog::ToJsonLine(log.suppressions()[0]));
  ASSERT_TRUE(suppressed_line.ok());
  EXPECT_EQ(suppressed_line.value().Find("kind")->text, "suppressed");
  EXPECT_EQ(suppressed_line.value().Find("covering_container")->text, "42");
  EXPECT_EQ(suppressed_line.value().Find("reason")->text, "contained");

  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_explain.spexp")
          .string();
  ASSERT_TRUE(log.WriteJsonl(path).ok());
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(ParseJson(line).ok()) << line;
    ++lines;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  EXPECT_EQ(lines, 2u);
}

TEST(JsonTest, NumbersStayVerbatim) {
  // kNoObject is 2^64-1: beyond double precision, so the parser must not
  // go through a double.
  auto parsed = ParseJson("{\"id\":18446744073709551615,\"x\":-0.25e2}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("id")->text, "18446744073709551615");
  EXPECT_EQ(parsed.value().Serialize(),
            "{\"id\":18446744073709551615,\"x\":-0.25e2}");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{}extra").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2,-]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_TRUE(ParseJson("{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}").ok());
}

TEST(EnabledFlagTest, TogglesProcessWide) {
  ASSERT_FALSE(Enabled());  // Tests run with instruments off by default.
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
}

}  // namespace
}  // namespace spire::obs
