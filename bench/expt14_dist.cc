// Distributed serving throughput (beyond the paper): epochs/s of the
// src/dist coordinator + node runtime over a multi-site truck-transfer
// trace, at 1, 2, and 4 nodes, against the serial reference. Every run
// must reproduce the reference stream byte for byte (the
// distributed_equivalence oracle); the bench hard-fails on divergence.
// Loopback runs (node threads in-process) carry the handoff-latency
// histogram — in spawn mode the nodes' obs registries live in the child
// processes, invisible here — and one forked multi-process run measures
// the cross-process wire path. Results land in BENCH_dist.json. Ideal
// scaling is min(nodes, sites, hardware threads); on a 1-thread machine
// expect ~1.0x, the byte-identity columns are the point.
//
//   ./expt14_dist [sites=3] [duration=600] [full=true] [key=value ...]
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "dist/coordinator.h"
#include "dist/runner.h"
#include "eval/table.h"
#include "obs/registry.h"
#include "sim/transfer.h"

using namespace spire;
using namespace spire::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  const bool full = args.GetBool("full", false).value_or(false);
  const int sites = static_cast<int>(args.GetInt("sites", 3).value_or(3));
  const auto duration =
      args.GetInt("duration", full ? 2400 : 600).value_or(600);

  SimConfig sim_config = SweepConfig(full);
  sim_config.duration_epochs = duration;
  // Trucks shuttle often enough that every node-count run routes handoffs.
  sim_config.transfer_sites = sites;
  sim_config.transfer_interval = full ? 240 : 90;
  sim_config.transfer_round_trips = 2;
  auto overridden = SimConfig::FromConfig(args, sim_config);
  if (overridden.ok()) sim_config = overridden.value();

  PrintHeader("Expt 14: distributed serving throughput",
              "beyond the paper (src/dist scaling + handoffs)");
  std::printf("%d site(s), %lld epochs, %u hardware thread(s)\n\n",
              sim_config.transfer_sites,
              static_cast<long long>(sim_config.duration_epochs),
              std::thread::hardware_concurrency());

  auto trace = BuildTransferTrace(sim_config);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  auto workload = dist::ToWorkload(trace.value());
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const std::vector<TransferHop>& hops = trace.value().hops;

  // Serial reference first: the stream every distributed run reproduces.
  const auto ref_start = std::chrono::steady_clock::now();
  EventStream reference =
      dist::RunDistReference(workload.value(), hops, PipelineOptions{});
  const double ref_seconds = Seconds(ref_start);
  const double ref_eps =
      ref_seconds > 0.0
          ? static_cast<double>(workload.value().num_epochs) / ref_seconds
          : 0.0;

  BenchReport report("dist");
  report.Add("sites", sim_config.transfer_sites);
  report.Add("epochs", static_cast<double>(workload.value().num_epochs));
  report.Add("transfer_hops", static_cast<double>(hops.size()));
  report.Add("hardware_threads", std::thread::hardware_concurrency());
  report.Add("reference_epochs_per_sec", ref_eps);

  TextTable table({"config", "wall (s)", "epochs/s", "speedup vs 1 node",
                   "events", "handoffs", "identical"});
  table.AddRow({"serial reference", TextTable::Num(ref_seconds, 3),
                TextTable::Num(ref_eps, 1), "-",
                std::to_string(reference.size()), "-", "-"});

  obs::SetEnabled(true);
  double one_node_eps = 0.0;
  for (int nodes : {1, 2, 4}) {
    obs::Registry::Global().Reset();
    dist::DistOptions options;
    options.num_nodes = nodes;
    const auto start = std::chrono::steady_clock::now();
    dist::DistResult result =
        dist::RunDistLoopback(workload.value(), hops, options);
    const double wall = Seconds(start);
    if (!result.status.ok()) {
      std::fprintf(stderr, "loopback(%d): %s\n", nodes,
                   result.status.ToString().c_str());
      return 1;
    }
    const double eps =
        wall > 0.0 ? static_cast<double>(workload.value().num_epochs) / wall
                   : 0.0;
    if (nodes == 1) one_node_eps = eps;
    const bool identical = result.events == reference;
    const obs::Histogram* latency =
        obs::Registry::Global().GetHistogram("dist", "handoff_latency_us");
    table.AddRow({std::to_string(nodes) + " node(s) loopback",
                  TextTable::Num(wall, 3), TextTable::Num(eps, 1),
                  TextTable::Num(one_node_eps > 0.0 ? eps / one_node_eps
                                                    : 0.0,
                                 2),
                  std::to_string(result.events.size()),
                  std::to_string(result.handoff_objects),
                  identical ? "yes" : "NO"});
    const std::string prefix = "nodes_" + std::to_string(nodes) + ".";
    report.Add(prefix + "wall_seconds", wall);
    report.Add(prefix + "epochs_per_sec", eps);
    report.Add(prefix + "speedup_vs_1_node",
               one_node_eps > 0.0 ? eps / one_node_eps : 0.0);
    report.Add(prefix + "events", static_cast<double>(result.events.size()));
    report.Add(prefix + "handoff_objects",
               static_cast<double>(result.handoff_objects));
    report.Add(prefix + "identical_to_reference", identical ? 1.0 : 0.0);
    report.Add(prefix + "p50_handoff_us", latency->Quantile(0.50));
    report.Add(prefix + "p95_handoff_us", latency->Quantile(0.95));
    report.Add(prefix + "p99_handoff_us", latency->Quantile(0.99));
    if (!identical) {
      std::fprintf(stderr,
                   "loopback(%d nodes) diverged from the serial reference\n",
                   nodes);
      return 1;
    }
  }
  obs::Registry::Global().Reset();
  obs::SetEnabled(false);

  // One forked multi-process run: the same protocol over real socketpairs
  // with each node in its own process — the deployment shape spire_cli
  // dist mode=spawn uses.
  {
    dist::DistOptions options;
    options.num_nodes = 2;
    const auto start = std::chrono::steady_clock::now();
    dist::DistResult result =
        dist::RunDistProcesses(workload.value(), hops, options);
    const double wall = Seconds(start);
    if (!result.status.ok()) {
      std::fprintf(stderr, "processes(2): %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    const double eps =
        wall > 0.0 ? static_cast<double>(workload.value().num_epochs) / wall
                   : 0.0;
    const bool identical = result.events == reference;
    table.AddRow({"2 process(es)", TextTable::Num(wall, 3),
                  TextTable::Num(eps, 1),
                  TextTable::Num(one_node_eps > 0.0 ? eps / one_node_eps
                                                    : 0.0,
                                 2),
                  std::to_string(result.events.size()),
                  std::to_string(result.handoff_objects),
                  identical ? "yes" : "NO"});
    report.Add("process_2.wall_seconds", wall);
    report.Add("process_2.epochs_per_sec", eps);
    report.Add("process_2.speedup_vs_1_node",
               one_node_eps > 0.0 ? eps / one_node_eps : 0.0);
    report.Add("process_2.identical_to_reference", identical ? 1.0 : 0.0);
    if (!identical) {
      std::fprintf(stderr,
                   "processes(2) diverged from the serial reference\n");
      return 1;
    }
    // The scaling target (1.5x at 2 nodes) only means anything with real
    // parallelism available; on fewer threads the run still proves the
    // wire path, so report and move on.
    if (std::thread::hardware_concurrency() >= 4 &&
        one_node_eps > 0.0 && eps / one_node_eps < 1.5) {
      std::fprintf(stderr,
                   "warning: multi-process speedup %.2fx below the 1.5x "
                   "target despite %u hardware threads\n",
                   eps / one_node_eps, std::thread::hardware_concurrency());
    }
  }
  table.Print();

  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
