#include "stream/epoch_stream.h"

#include <cassert>
#include <unordered_map>

namespace spire {

EpochBatch GroupByReader(const EpochReadings& readings, Epoch epoch) {
  EpochBatch batch;
  batch.epoch = epoch;
  std::unordered_map<ReaderId, std::size_t> index_of;
  for (const RfidReading& r : readings) {
    assert(r.epoch == epoch);
    auto [it, inserted] = index_of.try_emplace(r.reader, batch.per_reader.size());
    if (inserted) {
      batch.per_reader.push_back(ReaderBatch{r.reader, {}});
    }
    batch.per_reader[it->second].tags.push_back(r.tag);
  }
  return batch;
}

}  // namespace spire
