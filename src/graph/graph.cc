#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace spire {

Graph::Graph(int history_size) : history_size_(history_size) {
  assert(history_size >= 1 && history_size <= ShiftRegister::kMaxCapacity);
}

void Graph::BeginEpoch(Epoch now) {
  assert(now > now_);
  now_ = now;
  for (auto& layer_index : colored_index_) layer_index.clear();
  colored_nodes_.clear();
}

Node& Graph::GetOrCreateNode(ObjectId id) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (inserted) {
    Node& node = it->second;
    node.id = id;
    node.layer = EpcLayer(id);
  }
  return it->second;
}

void Graph::ColorNode(Node& node, LocationId color) {
  if (IsColored(node) && node.recent_color == color) return;
  node.recent_color = color;
  node.seen_at = now_;
  if (node.colored_epoch != now_) {
    node.colored_epoch = now_;
    colored_nodes_.push_back(node.id);
  }
  colored_index_[node.layer][color].push_back(node.id);
}

Node* Graph::FindNode(ObjectId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

const Node* Graph::FindNode(ObjectId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

EdgeId Graph::AddEdge(ObjectId parent, ObjectId child) {
  EdgeId existing = FindEdge(parent, child);
  if (existing != kNoEdge) return existing;

  EdgeId id;
  if (!free_edges_.empty()) {
    id = free_edges_.back();
    free_edges_.pop_back();
  } else {
    id = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
  }
  Edge& e = edges_[id];
  e = Edge{};
  e.parent = parent;
  e.child = child;
  e.recent_colocations = ShiftRegister(history_size_);
  e.created_at = now_;
  e.alive = true;

  GetOrCreateNode(parent).child_edges.push_back(id);
  GetOrCreateNode(child).parent_edges.push_back(id);
  ++num_alive_edges_;
  return id;
}

EdgeId Graph::FindEdge(ObjectId parent, ObjectId child) const {
  const Node* child_node = FindNode(child);
  if (child_node == nullptr) return kNoEdge;
  for (EdgeId id : child_node->parent_edges) {
    if (edges_[id].parent == parent) return id;
  }
  return kNoEdge;
}

void Graph::RemoveEdge(EdgeId id) {
  Edge& e = edges_[id];
  assert(e.alive);
  if (Node* parent = FindNode(e.parent)) {
    DetachFromAdjacency(parent->child_edges, id);
  }
  if (Node* child = FindNode(e.child)) {
    DetachFromAdjacency(child->parent_edges, id);
  }
  e.alive = false;
  free_edges_.push_back(id);
  --num_alive_edges_;
}

void Graph::RemoveNode(ObjectId id) {
  Node* node = FindNode(id);
  if (node == nullptr) return;
  // Copy: RemoveEdge mutates the adjacency lists.
  std::vector<EdgeId> incident = node->parent_edges;
  incident.insert(incident.end(), node->child_edges.begin(),
                  node->child_edges.end());
  for (EdgeId e : incident) RemoveEdge(e);
  // The per-epoch color index may still reference the node; uncolor lazily
  // is not possible for removed ids, so purge it eagerly.
  if (node->colored_epoch == now_) {
    auto& by_color = colored_index_[node->layer];
    auto it = by_color.find(node->recent_color);
    if (it != by_color.end()) {
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
    }
    colored_nodes_.erase(
        std::remove(colored_nodes_.begin(), colored_nodes_.end(), id),
        colored_nodes_.end());
  }
  nodes_.erase(id);
}

const std::vector<ObjectId>& Graph::ColoredAt(LocationId color,
                                              int layer) const {
  static const std::vector<ObjectId> kEmpty;
  assert(layer >= 0 && layer < kNumPackagingLevels);
  const auto& by_color = colored_index_[layer];
  auto it = by_color.find(color);
  return it == by_color.end() ? kEmpty : it->second;
}

std::size_t Graph::MemoryUsage() const {
  std::size_t bytes = 0;
  // Hash-map node storage: entry payload plus an assumed bucket/control
  // overhead of two pointers per entry.
  bytes += nodes_.size() * (sizeof(Node) + 2 * sizeof(void*));
  for (const auto& [id, node] : nodes_) {
    bytes += node.parent_edges.capacity() * sizeof(EdgeId);
    bytes += node.child_edges.capacity() * sizeof(EdgeId);
  }
  bytes += edges_.capacity() * sizeof(Edge);
  bytes += free_edges_.capacity() * sizeof(EdgeId);
  bytes += colored_nodes_.capacity() * sizeof(ObjectId);
  return bytes;
}

void Graph::DetachFromAdjacency(std::vector<EdgeId>& list, EdgeId id) {
  auto it = std::find(list.begin(), list.end(), id);
  if (it != list.end()) {
    *it = list.back();
    list.pop_back();
  }
}

}  // namespace spire
