// Deterministic pseudo-random utilities for the simulator and tests.
//
// We use a PCG32 generator: small state, excellent statistical quality, and
// fully reproducible across platforms (unlike std::default_random_engine,
// whose distributions are implementation-defined). All distribution helpers
// here are hand-rolled so a seed produces the identical trace everywhere.
#pragma once

#include <cassert>
#include <cstdint>

namespace spire {

/// PCG32 (O'Neill 2014), the XSH-RR variant.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    Next();
    state_ += seed;
    Next();
  }

  /// Uniform 32-bit value.
  std::uint32_t Next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t NextBounded(std::uint32_t bound) {
    assert(bound > 0);
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return Next() * (1.0 / 4294967296.0); }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace spire
