// ShardRouter: partitions a multi-site workload onto pipeline shards and
// streams epoch work into their bounded input queues.
//
// The shard key is the site index (site mod num_shards): all readings of
// one deployment always reach the same shard, so each site's pipeline sees
// its complete, ordered stream — the property that makes per-site
// parallelism exact rather than approximate (DESIGN.md §8).
//
// Every shard receives one EpochWork per global epoch even when its sites
// were silent: pipelines must observe every epoch for the inference
// schedule and Missing detection to fire. After the last epoch (or an
// early stop) the router sends one finish message per shard, telling the
// pipelines to flush their open events, then closes the input queues.
#pragma once

#include <atomic>
#include <utility>
#include <vector>

#include "common/types.h"
#include "serve/queue.h"
#include "serve/workload.h"

namespace spire::serve {

/// One unit of shard input: a global epoch plus the readings of the
/// shard's sites for that epoch (sites in ascending order, silent sites
/// included with empty readings). `finish` marks the final flush message;
/// its epoch is one past the last processed epoch.
struct EpochWork {
  Epoch epoch = kNeverEpoch;
  bool finish = false;
  std::vector<std::pair<int, EpochReadings>> site_readings;
};

class ShardRouter {
 public:
  /// `workload` must be normalized and outlive the router.
  ShardRouter(const Workload* workload, int num_shards);

  int num_shards() const { return num_shards_; }

  /// The shard a site is assigned to.
  int ShardOf(int site) const { return site % num_shards_; }

  /// Site indexes owned by each shard, ascending.
  const std::vector<std::vector<int>>& shard_sites() const {
    return shard_sites_;
  }

  /// Streams all epochs into the shard queues (blocking on full queues —
  /// this is where backpressure lands), sends the finish messages, and
  /// closes every queue. Returns the number of epochs fed, which is less
  /// than the workload horizon after RequestStop.
  Epoch FeedAll(const std::vector<BoundedQueue<EpochWork>*>& queues);

  /// Asks FeedAll to stop at the next epoch boundary; pipelines still
  /// flush, so the output stream stays well-formed.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  const Workload* workload_;
  int num_shards_;
  std::vector<std::vector<int>> shard_sites_;
  std::atomic<bool> stop_{false};
};

}  // namespace spire::serve
