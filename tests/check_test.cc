// Unit tests for the differential checking harness itself (src/check):
// deterministic case expansion, the oracle battery on known-green seeds and
// known-broken streams, repro serialization, and the shrinker contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/repro.h"
#include "check/shrink.h"
#include "check/trace_gen.h"
#include "common/epc.h"

namespace spire {
namespace {

ObjectId Item(std::uint32_t serial) {
  EpcFields fields;
  fields.level = PackagingLevel::kItem;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

TEST(TraceGenTest, SameSeedExpandsToIdenticalTrace) {
  const FuzzCase fuzz_case = CaseFromSeed(42);
  auto first = GenerateTrace(fuzz_case);
  auto second = GenerateTrace(fuzz_case);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const RecordedTrace& a = first.value();
  const RecordedTrace& b = second.value();
  EXPECT_EQ(a.total_readings, b.total_readings);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    ASSERT_EQ(a.epochs[e].size(), b.epochs[e].size()) << "epoch " << e;
    for (std::size_t i = 0; i < a.epochs[e].size(); ++i) {
      EXPECT_EQ(a.epochs[e][i].tag, b.epochs[e][i].tag);
      EXPECT_EQ(a.epochs[e][i].reader, b.epochs[e][i].reader);
      EXPECT_EQ(a.epochs[e][i].epoch, b.epochs[e][i].epoch);
      EXPECT_EQ(a.epochs[e][i].tick, b.epochs[e][i].tick);
    }
  }
}

TEST(TraceGenTest, DistinctSeedsVaryTheScenario) {
  // Not a strict requirement seed-by-seed, but across a handful of seeds the
  // generator must not collapse to a single deployment shape.
  std::vector<std::size_t> totals;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto trace = GenerateTrace(CaseFromSeed(seed));
    ASSERT_TRUE(trace.ok());
    totals.push_back(trace.value().total_readings);
  }
  std::sort(totals.begin(), totals.end());
  totals.erase(std::unique(totals.begin(), totals.end()), totals.end());
  EXPECT_GT(totals.size(), 1u);
}

TEST(TraceGenTest, ExclusionRemovesEveryReadingOfTheTag) {
  FuzzCase fuzz_case = CaseFromSeed(7);
  auto full = GenerateTrace(fuzz_case);
  ASSERT_TRUE(full.ok());
  const std::vector<ObjectId> tags = TagsInTrace(full.value());
  ASSERT_FALSE(tags.empty());
  fuzz_case.excluded_tags.push_back(tags.front());
  auto filtered = GenerateTrace(fuzz_case);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LT(filtered.value().total_readings, full.value().total_readings);
  for (const EpochReadings& readings : filtered.value().epochs) {
    for (const RfidReading& r : readings) {
      EXPECT_NE(r.tag, tags.front());
    }
  }
}

TEST(OracleTest, KnownSeedsStayGreen) {
  DifferentialChecker checker;
  CheckStats stats;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto failure = checker.Check(CaseFromSeed(seed), &stats);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure->oracle << "\n"
        << failure->detail;
  }
  // 2 compression levels + 4 incremental-equivalence re-runs + 2 determinism
  // re-runs + 1 explain-consistency re-run per case.
  EXPECT_EQ(stats.traces_run, 27u);
}

TEST(OracleTest, IncrementalEquivalenceHoldsOnKnownSeeds) {
  for (std::uint64_t seed : {4u, 40u}) {  // 40 caught the pruning-seed bug.
    auto trace = GenerateTrace(CaseFromSeed(seed));
    ASSERT_TRUE(trace.ok());
    EventStream level1 =
        RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel1);
    EventStream level2 =
        RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel2);
    auto failure = DifferentialChecker::CheckIncrementalEquivalence(
        trace.value(), level1, level2);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure->detail;
  }
}

TEST(OracleTest, IncrementalEquivalenceCatchesTamperedStream) {
  auto trace = GenerateTrace(CaseFromSeed(4));
  ASSERT_TRUE(trace.ok());
  EventStream level1 =
      RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel1);
  EventStream level2 =
      RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel2);
  ASSERT_FALSE(level1.empty());
  level1.pop_back();  // An incremental run that dropped an event.
  auto failure = DifferentialChecker::CheckIncrementalEquivalence(
      trace.value(), level1, level2);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "incremental_equivalence");
}

TEST(OracleTest, WellFormednessCatchesDanglingEnd) {
  EventStream level1;
  level1.push_back(Event::EndLocation(Item(1), 2, 1, 5));  // End, no Start.
  auto failure = DifferentialChecker::CheckWellFormed(level1, {});
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "well_formed");
}

TEST(OracleTest, RecoveryCatchesDivergingStreams) {
  EventStream level1;
  level1.push_back(Event::StartLocation(Item(1), 2, 1));
  level1.push_back(Event::EndLocation(Item(1), 2, 1, 5));
  auto failure = DifferentialChecker::CheckLevel2Recovery(level1, {});
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->oracle, "level2_recovery");
  EXPECT_FALSE(failure->detail.empty());
}

TEST(OracleTest, DiffStreamsEmptyOnEqualModuloIntraEpochOrder) {
  EventStream a;
  a.push_back(Event::StartLocation(Item(1), 2, 3));
  a.push_back(Event::StartLocation(Item(2), 4, 3));
  EventStream b;
  b.push_back(Event::StartLocation(Item(2), 4, 3));
  b.push_back(Event::StartLocation(Item(1), 2, 3));
  EXPECT_EQ(DiffStreams(Canonicalized(a), Canonicalized(b), "a", "b"), "");
}

TEST(ReproTest, SerializeParseRoundTrip) {
  FuzzCase fuzz_case = CaseFromSeed(99);
  fuzz_case.max_epochs = 17;
  fuzz_case.excluded_tags = {Item(3), Item(8)};
  OracleFailure failure;
  failure.oracle = "level2_recovery";
  failure.detail = "first divergence at [4]\nmulti-line detail";
  auto lines = SerializeRepro(fuzz_case, &failure);
  auto parsed = ParseRepro(lines);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().sim.seed, fuzz_case.sim.seed);
  EXPECT_EQ(parsed.value().max_epochs, 17);
  EXPECT_EQ(parsed.value().excluded_tags, fuzz_case.excluded_tags);
  // The reloaded case expands to the same trace.
  auto a = GenerateTrace(fuzz_case);
  auto b = GenerateTrace(parsed.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().total_readings, b.value().total_readings);
}

TEST(ShrinkTest, TruncatesEpochsAndExcludesIrrelevantTags) {
  FuzzCase failing = CaseFromSeed(5);
  auto trace = GenerateTrace(failing);
  ASSERT_TRUE(trace.ok());
  const std::vector<ObjectId> tags = TagsInTrace(trace.value());
  ASSERT_GE(tags.size(), 2u);
  const ObjectId culprit = tags.front();

  // Synthetic bug: the case "fails" iff the culprit tag is still in the
  // trace and at least 4 epochs survive. The shrinker must keep exactly
  // that core and discard the rest.
  const CaseRunner run =
      [&](const FuzzCase& candidate) -> std::optional<OracleFailure> {
    const bool culprit_present =
        std::find(candidate.excluded_tags.begin(),
                  candidate.excluded_tags.end(),
                  culprit) == candidate.excluded_tags.end();
    if (culprit_present && candidate.EffectiveEpochs() >= 4) {
      return OracleFailure{"synthetic", "still failing"};
    }
    return std::nullopt;
  };

  OracleFailure original{"synthetic", "still failing"};
  ShrinkOutcome outcome = MinimizeCase(failing, original, run);
  EXPECT_EQ(outcome.failure.oracle, "synthetic");
  EXPECT_GE(outcome.minimized.EffectiveEpochs(), 4);
  EXPECT_LE(outcome.minimized.EffectiveEpochs(), failing.EffectiveEpochs());
  EXPECT_EQ(std::find(outcome.minimized.excluded_tags.begin(),
                      outcome.minimized.excluded_tags.end(), culprit),
            outcome.minimized.excluded_tags.end());
  EXPECT_FALSE(outcome.minimized.excluded_tags.empty());
  // The minimized trace keeps the culprit and sheds irrelevant tags (epoch
  // truncation removes most; the ddmin pass excludes the stragglers).
  auto minimized_trace = GenerateTrace(outcome.minimized);
  ASSERT_TRUE(minimized_trace.ok());
  const std::vector<ObjectId> remaining = TagsInTrace(minimized_trace.value());
  EXPECT_NE(std::find(remaining.begin(), remaining.end(), culprit),
            remaining.end());
  EXPECT_LT(remaining.size(), tags.size());
  EXPECT_GT(outcome.attempts, 0);
}

}  // namespace
}  // namespace spire
