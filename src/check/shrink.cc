#include "check/shrink.h"

#include <algorithm>
#include <unordered_set>

namespace spire {

namespace {

/// Greedy binary descent on the epoch count: repeatedly try to cut the
/// remaining suffix in half; halve the step on success-free tries.
void ShrinkEpochs(FuzzCase* current, OracleFailure* failure,
                  const CaseRunner& run, int max_attempts, int* attempts) {
  Epoch effective = current->EffectiveEpochs();
  Epoch step = effective / 2;
  while (step >= 1 && *attempts < max_attempts) {
    const Epoch candidate_epochs = effective - step;
    if (candidate_epochs < 1) {
      step /= 2;
      continue;
    }
    FuzzCase candidate = *current;
    candidate.max_epochs = candidate_epochs;
    ++*attempts;
    if (auto candidate_failure = run(candidate)) {
      *current = candidate;
      *failure = *candidate_failure;
      effective = candidate_epochs;
      step = std::min(step, effective / 2);
    } else {
      step /= 2;
    }
  }
}

/// ddmin-style tag removal: try excluding chunks of the remaining tags,
/// halving the chunk size down to single tags.
void ShrinkTags(FuzzCase* current, OracleFailure* failure,
                const CaseRunner& run, int max_attempts, int* attempts) {
  auto trace = GenerateTrace(*current);
  if (!trace.ok()) return;
  std::vector<ObjectId> tags = TagsInTrace(trace.value());
  std::size_t chunk = std::max<std::size_t>(1, tags.size() / 2);
  while (chunk >= 1 && *attempts < max_attempts) {
    bool removed_any = false;
    for (std::size_t begin = 0;
         begin < tags.size() && *attempts < max_attempts; /* in body */) {
      const std::size_t end = std::min(tags.size(), begin + chunk);
      FuzzCase candidate = *current;
      candidate.excluded_tags.insert(candidate.excluded_tags.end(),
                                     tags.begin() + begin, tags.begin() + end);
      ++*attempts;
      if (auto candidate_failure = run(candidate)) {
        *current = candidate;
        *failure = *candidate_failure;
        tags.erase(tags.begin() + begin, tags.begin() + end);
        removed_any = true;  // `begin` now points at the next chunk.
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk /= 2;
  }
  std::sort(current->excluded_tags.begin(), current->excluded_tags.end());
}

}  // namespace

ShrinkOutcome MinimizeCase(const FuzzCase& failing,
                           const OracleFailure& original,
                           const CaseRunner& run, int max_attempts) {
  ShrinkOutcome outcome;
  outcome.minimized = failing;
  outcome.failure = original;
  ShrinkEpochs(&outcome.minimized, &outcome.failure, run, max_attempts,
               &outcome.attempts);
  ShrinkTags(&outcome.minimized, &outcome.failure, run, max_attempts,
             &outcome.attempts);
  return outcome;
}

}  // namespace spire
