#!/usr/bin/env bash
# Local CI: configure, build, and run the test suite in three
# configurations — plain, ASan+UBSan (SPIRE_SANITIZE=ON), and TSan
# (SPIRE_SANITIZE=thread, concurrency tests only: the serving layer's
# queue/merger/serve suites). Any warning is an error in every
# configuration (-Werror is always on). After ctest, the plain and
# sanitized configurations replay the spire_fuzz seed corpus
# (tools/fuzz_seeds.txt) through the differential oracle battery
# (DESIGN.md §7); an oracle violation fails the build and leaves the
# minimized repro under <build-dir>/fuzz-repros/ (its path is printed on
# stdout).
#
#   tools/ci.sh            # all three configurations
#   tools/ci.sh plain      # plain only
#   tools/ci.sh sanitize   # ASan+UBSan only
#   tools/ci.sh tsan       # ThreadSanitizer only (serve/queue/merger tests)
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "=== [$name] fuzz (differential oracles) ==="
  "$dir/tools/spire_fuzz" --seeds tools/fuzz_seeds.txt --budget 30s \
    --out-dir "$dir/fuzz-repros"
}

# TSan watches the threaded code paths; the single-threaded suites add
# nothing but runtime, so only the serving-layer tests run here.
run_tsan() {
  local dir="build-tsan"
  echo "=== [tsan] configure ==="
  cmake -B "$dir" -S . -DSPIRE_SANITIZE=thread
  echo "=== [tsan] build ==="
  cmake --build "$dir" -j "$jobs" --target serve_test common_test
  echo "=== [tsan] test (concurrency suites) ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
    -R 'Serve|Queue|Merger|Log'
}

case "$mode" in
  plain) run_config plain build ;;
  sanitize) run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON ;;
  tsan) run_tsan ;;
  all)
    run_config plain build
    run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON
    run_tsan
    ;;
  *)
    echo "usage: tools/ci.sh [plain|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

echo "=== CI OK ($mode) ==="
