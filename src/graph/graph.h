// The time-varying colored graph model (Section III-A).
//
// Nodes are RFID-tagged objects, arranged in layers by packaging level and
// colored by the location where they were observed in the current epoch; an
// unobserved node is uncolored but remembers its most recent color and
// observation time. Directed edges parent -> child encode *possible*
// containment; an edge never connects two nodes of different colors. Each
// edge carries a shift-register of recent co-location evidence, and each
// node remembers the last container confirmed by a special reader together
// with a count of conflicting observations since that confirmation.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/epc.h"
#include "common/status.h"
#include "common/types.h"

namespace spire {

/// Index of an edge in the graph's edge arena.
using EdgeId = std::uint32_t;
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// The last containment confirmation a node received from a special reader.
struct ConfirmedParent {
  ObjectId parent = kNoObject;
  Epoch confirmed_at = kNeverEpoch;
  /// Observations conflicting with the confirmation since it was made
  /// (drives the adaptive-beta heuristic of Section VI, Expt 1).
  int conflicts = 0;
  /// Observations in which the confirmed edge was exercised (either
  /// co-location or one-sided observation) since the confirmation.
  int observations = 0;
};

/// A graph node: one RFID-tagged object.
struct Node {
  ObjectId id = kNoObject;
  /// Layer = packaging level (item 0, case 1, pallet 2).
  int layer = 0;
  /// Most recent color and when it was observed ((recent color, seen at) of
  /// Section III-A). The node is *colored* in the current epoch iff
  /// colored_epoch equals the graph's current epoch.
  LocationId recent_color = kUnknownLocation;
  Epoch seen_at = kNeverEpoch;
  Epoch colored_epoch = kNeverEpoch;
  ConfirmedParent confirmed;
  /// Incoming edges (possible containers) and outgoing edges (possible
  /// contents).
  std::vector<EdgeId> parent_edges;
  std::vector<EdgeId> child_edges;
};

/// A directed containment-candidate edge parent -> child.
struct Edge {
  ObjectId parent = kNoObject;
  ObjectId child = kNoObject;
  /// recent_co-locations: positive/negative co-location evidence, newest
  /// observation at index 0.
  ShiftRegister recent_colocations{32};
  Epoch update_time = kNeverEpoch;
  Epoch created_at = kNeverEpoch;
  bool alive = false;
};

/// The mutable graph. One instance lives for the whole stream; the data
/// capture module updates it every epoch and the interpretation module reads
/// (and prunes) it.
class Graph {
 public:
  /// `history_size` is S, the capacity of every edge's co-location register.
  explicit Graph(int history_size = 32);

  /// Starts a new epoch: all nodes become uncolored (lazily, via the epoch
  /// stamp) and the per-epoch color index is cleared. `now` must increase
  /// strictly.
  void BeginEpoch(Epoch now);

  Epoch now() const { return now_; }

  /// Finds or creates the node for an object; the layer is decoded from the
  /// EPC id. Returns the node.
  Node& GetOrCreateNode(ObjectId id);

  /// Colors a node for the current epoch and updates (recent color, seen
  /// at). Also registers the node in the per-epoch color index.
  void ColorNode(Node& node, LocationId color);

  /// True iff the node was observed in the current epoch.
  bool IsColored(const Node& node) const { return node.colored_epoch == now_; }

  /// The node's color this epoch, or kUnknownLocation when uncolored.
  LocationId ColorOf(const Node& node) const {
    return IsColored(node) ? node.recent_color : kUnknownLocation;
  }

  /// Node lookup; nullptr when the object has no node.
  Node* FindNode(ObjectId id);
  const Node* FindNode(ObjectId id) const;

  /// Creates the edge parent -> child unless it already exists; returns its
  /// id either way. The caller guarantees the color constraint.
  EdgeId AddEdge(ObjectId parent, ObjectId child);

  /// Looks up an existing edge parent -> child, or kNoEdge.
  EdgeId FindEdge(ObjectId parent, ObjectId child) const;

  /// Removes an edge from the arena and both adjacency lists.
  void RemoveEdge(EdgeId id);

  /// Removes a node and all its incident edges (used when an object exits
  /// the physical world through a proper channel).
  void RemoveNode(ObjectId id);

  Edge& edge(EdgeId id) { return edges_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// The node at the other end of an edge, as seen from `from`.
  ObjectId OtherEnd(const Edge& e, ObjectId from) const {
    return e.parent == from ? e.child : e.parent;
  }

  /// Nodes colored `color` in the current epoch at the given layer.
  const std::vector<ObjectId>& ColoredAt(LocationId color, int layer) const;

  /// All nodes colored in the current epoch (seed set for inference).
  const std::vector<ObjectId>& ColoredNodes() const { return colored_nodes_; }

  /// All nodes (stable reference map; iteration order unspecified).
  const std::unordered_map<ObjectId, Node>& nodes() const { return nodes_; }

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumEdges() const { return num_alive_edges_; }

  /// Upper bound on edge-arena slots (alive + free-listed); edge ids are
  /// always < EdgeCapacity().
  std::size_t EdgeCapacity() const { return edges_.size(); }

  int history_size() const { return history_size_; }

  /// Deterministic memory accounting in bytes: node, edge, adjacency and
  /// index footprints. Used by the Expt-6 reproduction in place of JVM heap
  /// measurements.
  std::size_t MemoryUsage() const;

 private:
  void DetachFromAdjacency(std::vector<EdgeId>& list, EdgeId id);

  int history_size_;
  Epoch now_ = kNeverEpoch;
  std::unordered_map<ObjectId, Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<EdgeId> free_edges_;
  std::size_t num_alive_edges_ = 0;
  /// Per-epoch index: color -> layer -> colored nodes.
  std::map<LocationId, std::vector<ObjectId>> colored_index_[kNumPackagingLevels];
  std::vector<ObjectId> colored_nodes_;
};

}  // namespace spire
