#include "store/archive_reader.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <system_error>
#include <utility>

#include "store/block.h"
#include "store/crc32.h"
#include "store/little_endian.h"

namespace spire {

ArchiveReader::ArchiveReader(std::string path, SegmentInfo info,
                             bool index_rebuilt)
    : path_(std::move(path)),
      info_(std::move(info)),
      index_rebuilt_(index_rebuilt) {}

Result<ArchiveReader> ArchiveReader::Open(const std::string& path) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("cannot open archive segment: " + path);

  auto indexed = ReadIndexFile(path, size);
  if (indexed.ok()) {
    return ArchiveReader(path, std::move(indexed).value(),
                         /*index_rebuilt=*/false);
  }
  auto scanned = ScanSegment(path);
  if (!scanned.ok()) return scanned.status();
  return ArchiveReader(path, std::move(scanned).value(),
                       /*index_rebuilt=*/true);
}

Result<EventStream> ArchiveReader::DecodeBlocks(
    const std::vector<std::uint32_t>& indexes) const {
  EventStream events;
  if (indexes.empty()) return events;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::NotFound("cannot open archive segment: " + path_);

  std::vector<std::uint8_t> payload;
  for (std::uint32_t index : indexes) {
    if (index >= info_.blocks.size()) {
      return Status::Internal("block index out of range");
    }
    const BlockMeta& meta = info_.blocks[index];
    std::uint8_t header[kBlockHeaderBytes] = {};
    in.seekg(static_cast<std::streamoff>(meta.offset));
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!in.good()) {
      return Status::Corruption("truncated block header in " + path_);
    }
    if (GetLE32(header) != kArchiveBlockMarker ||
        Crc32(header, kBlockHeaderBytes - 4) != GetLE32(header + 32)) {
      return Status::Corruption("corrupt block header in " + path_);
    }
    const std::uint32_t count = GetLE32(header + 4);
    const std::uint32_t payload_size = GetLE32(header + 24);
    if (count != meta.count || payload_size > kMaxBlockPayloadBytes) {
      return Status::Corruption("block header disagrees with the directory: " +
                                path_);
    }
    payload.resize(payload_size);
    in.read(reinterpret_cast<char*>(payload.data()), payload_size);
    if (!in.good()) {
      return Status::Corruption("truncated block payload in " + path_);
    }
    if (Crc32(payload.data(), payload.size()) != GetLE32(header + 28)) {
      return Status::Corruption("block payload checksum mismatch in " + path_);
    }
    SPIRE_RETURN_NOT_OK(DecodeBlock(payload, count, &events));
  }
  return events;
}

Result<EventStream> ArchiveReader::ScanAll() const {
  std::vector<std::uint32_t> all(info_.blocks.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::uint32_t>(i);
  }
  return DecodeBlocks(all);
}

Result<EventStream> ArchiveReader::ScanRange(Epoch lo, Epoch hi) const {
  std::vector<std::uint32_t> selected;
  for (std::size_t i = 0; i < info_.blocks.size(); ++i) {
    if (info_.blocks[i].Intersects(lo, hi)) {
      selected.push_back(static_cast<std::uint32_t>(i));
    }
  }
  auto decoded = DecodeBlocks(selected);
  if (!decoded.ok()) return decoded.status();
  EventStream events;
  for (const Event& event : decoded.value()) {
    const Epoch primary = PrimaryEpoch(event);
    if (lo <= primary && primary <= hi) events.push_back(event);
  }
  return events;
}

Result<EventStream> ArchiveReader::ScanObject(ObjectId object) const {
  auto it = info_.postings.find(object);
  if (it == info_.postings.end()) return EventStream{};
  auto decoded = DecodeBlocks(it->second);
  if (!decoded.ok()) return decoded.status();
  EventStream events;
  for (const Event& event : decoded.value()) {
    if (event.object == object) events.push_back(event);
  }
  return events;
}

EventStream RepairRestrictedStream(const EventStream& selection) {
  EventStream repaired;
  repaired.reserve(selection.size());
  std::set<std::pair<ObjectId, bool>> open;
  for (const Event& event : selection) {
    const bool containment = IsContainmentEvent(event.type);
    switch (event.type) {
      case EventType::kStartLocation:
      case EventType::kStartContainment:
        open.insert({event.object, containment});
        break;
      case EventType::kEndLocation:
      case EventType::kEndContainment: {
        auto it = open.find({event.object, containment});
        if (it == open.end()) {
          Event start = event;
          start.type = containment ? EventType::kStartContainment
                                   : EventType::kStartLocation;
          start.end = kInfiniteEpoch;
          repaired.push_back(start);
        } else {
          open.erase(it);
        }
        break;
      }
      case EventType::kMissing:
        break;
    }
    repaired.push_back(event);
  }
  return repaired;
}

std::size_t ArchiveReader::BlocksInRange(Epoch lo, Epoch hi) const {
  std::size_t count = 0;
  for (const BlockMeta& block : info_.blocks) {
    if (block.Intersects(lo, hi)) ++count;
  }
  return count;
}

std::size_t ArchiveReader::BlocksForObject(ObjectId object) const {
  auto it = info_.postings.find(object);
  return it == info_.postings.end() ? 0 : it->second.size();
}

}  // namespace spire
