// Tests for the concurrent serving layer (src/serve): the bounded MPSC
// queue, the epoch-barrier merger, and end-to-end determinism — serve at
// any shard count must reproduce the serial reference byte-for-byte.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/oracles.h"
#include "check/trace_gen.h"
#include "compress/well_formed.h"
#include "serve/merger.h"
#include "serve/queue.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace spire::serve {
namespace {

constexpr auto kTick = std::chrono::milliseconds(20);

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(2);
  std::optional<int> got;
  std::thread consumer([&] { got = queue.Pop(); });
  std::this_thread::sleep_for(kTick);
  EXPECT_TRUE(queue.Push(7));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

TEST(BoundedQueueTest, PushBlocksWhenFullAndResumesOnPop) {
  QueueMetrics metrics;
  BoundedQueue<int> queue(2, &metrics);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3));  // Full: must block until a Pop.
    pushed.store(true);
  });
  std::this_thread::sleep_for(kTick);
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
  EXPECT_EQ(queue.Pop().value_or(-1), 3);
  EXPECT_GE(metrics.blocked_pushes.value(), 1u);
  EXPECT_EQ(metrics.depth_highwater.value(), 2);
}

TEST(BoundedQueueTest, TryPushCountsDrops) {
  QueueMetrics metrics;
  BoundedQueue<int> queue(1, &metrics);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(metrics.dropped.value(), 2u);
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> queue(2);
  std::optional<int> got = 0;
  std::thread consumer([&] { got = queue.Pop(); });
  std::this_thread::sleep_for(kTick);
  queue.Close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedPush) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  bool accepted = true;
  std::thread producer([&] { accepted = queue.Push(2); });
  std::this_thread::sleep_for(kTick);
  queue.Close();
  producer.join();
  EXPECT_FALSE(accepted);
}

TEST(BoundedQueueTest, CloseDrainsAcceptedItems) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.Push(i));
  queue.Close();
  EXPECT_FALSE(queue.Push(99));  // Closed: rejected.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(queue.Pop().value_or(-1), i);
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // Stays drained.
}

TEST(BoundedQueueTest, MultiProducerPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<std::pair<int, int>> queue(4);  // Small: forces backpressure.
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({p, i}));
      }
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    const auto [producer, seq] = *item;
    EXPECT_EQ(seq, next_expected[static_cast<std::size_t>(producer)]);
    ++next_expected[static_cast<std::size_t>(producer)];
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[static_cast<std::size_t>(p)], kPerProducer);
  }
}

// ---------------------------------------------------------------------------
// EventMerger

/// A one-event batch whose event encodes (epoch, site) in the object id so
/// ordering violations are visible in the merged stream.
SiteBatch Batch(Epoch epoch, int site) {
  SiteBatch batch;
  batch.epoch = epoch;
  batch.site = site;
  batch.events.push_back(Event::StartLocation(
      static_cast<ObjectId>(100 * (epoch + 1) + site), 1, epoch));
  return batch;
}

SiteBatch FinishBatch(Epoch epoch, int site) {
  SiteBatch batch;
  batch.epoch = epoch;
  batch.site = site;
  batch.finish = true;
  return batch;
}

TEST(EventMergerTest, MergesByEpochThenSite) {
  // Queue 0 carries sites {0, 2}; queue 1 carries site {1}.
  BoundedQueue<SiteBatch> q0(16), q1(16);
  const std::vector<BoundedQueue<SiteBatch>*> queues = {&q0, &q1};
  const std::vector<std::size_t> per_queue = {2, 1};
  for (Epoch e = 0; e < 2; ++e) {
    ASSERT_TRUE(q0.Push(Batch(e, 0)));
    ASSERT_TRUE(q0.Push(Batch(e, 2)));
    ASSERT_TRUE(q1.Push(Batch(e, 1)));
  }
  ASSERT_TRUE(q0.Push(FinishBatch(2, 0)));
  ASSERT_TRUE(q0.Push(FinishBatch(2, 2)));
  ASSERT_TRUE(q1.Push(FinishBatch(2, 1)));
  q0.Close();
  q1.Close();

  MergerMetrics metrics;
  EventMerger merger(&metrics);
  EventStream out;
  ASSERT_TRUE(merger.Drain(queues, per_queue, &out).ok());

  // Global order: (epoch, site) ascending regardless of queue layout.
  std::vector<ObjectId> got;
  for (const Event& event : out) got.push_back(event.object);
  EXPECT_EQ(got, (std::vector<ObjectId>{100, 101, 102, 200, 201, 202}));
  EXPECT_EQ(metrics.epochs_merged.value(), 2u);  // Data rounds; finish not.
  EXPECT_EQ(metrics.events_out.value(), 6u);
}

TEST(EventMergerTest, EarlyCloseIsProtocolError) {
  BoundedQueue<SiteBatch> q0(4);
  ASSERT_TRUE(q0.Push(Batch(0, 0)));
  q0.Close();  // No finish batch: the producer died.
  EventMerger merger;
  EventStream out;
  Status status = merger.Drain({&q0}, {1}, &out);
  EXPECT_FALSE(status.ok());
}

TEST(EventMergerTest, WrongEpochIsProtocolError) {
  BoundedQueue<SiteBatch> q0(4);
  ASSERT_TRUE(q0.Push(Batch(5, 0)));  // Expected epoch 0.
  q0.Close();
  EventMerger merger;
  EventStream out;
  Status status = merger.Drain({&q0}, {1}, &out);
  EXPECT_FALSE(status.ok());
}

// ---------------------------------------------------------------------------
// End-to-end serving

/// Expands fuzz seeds into a normalized multi-site workload (one site per
/// seed), reusing the src/check trace generator.
Workload MakeWorkload(const std::vector<std::uint64_t>& seeds) {
  Workload workload;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    FuzzCase fuzz_case = CaseFromSeed(seeds[i]);
    // NormalizeWorkload plants the site bits itself, so each site must be a
    // raw single-site trace; a transfer case's merged view already uses them.
    fuzz_case.sim.transfer_sites = 1;
    auto trace = GenerateTrace(fuzz_case);
    EXPECT_TRUE(trace.ok()) << trace.status().ToString();
    SiteWorkload site;
    site.name = "seed-" + std::to_string(seeds[i]);
    site.registry = trace.value().registry;
    site.epochs = std::move(trace.value().epochs);
    workload.sites.push_back(std::move(site));
  }
  Status status = NormalizeWorkload(&workload);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return workload;
}

EventStream Serve(const Workload& workload, int shards,
                  CompressionLevel level = CompressionLevel::kLevel1) {
  ServeOptions options;
  options.num_shards = shards;
  options.queue_capacity = 4;  // Small: exercises backpressure paths.
  options.pipeline.level = level;
  SpireServer server(&workload, options);
  ServeResult result = server.Run();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.epochs_processed, workload.num_epochs);
  return std::move(result.events);
}

TEST(ServeTest, ShardCountsAreByteIdentical) {
  // 3 sites over 4 shards also exercises a shard that owns zero sites.
  Workload workload = MakeWorkload({11, 12, 13});
  for (CompressionLevel level :
       {CompressionLevel::kLevel1, CompressionLevel::kLevel2}) {
    PipelineOptions options;
    options.level = level;
    EventStream reference = RunServeReference(workload, options);
    EXPECT_FALSE(reference.empty());
    for (int shards : {1, 2, 4}) {
      EventStream served = Serve(workload, shards, level);
      EXPECT_EQ(served, reference)
          << "shards=" << shards << " level=" << static_cast<int>(level)
          << "\n"
          << DiffStreams(served, reference, "serve", "reference");
    }
  }
}

TEST(ServeTest, SingleSiteMatchesPlainPipeline) {
  // Site 0's normalization is the identity, so serve over one site must
  // reproduce the plain single-threaded pipeline bit for bit.
  FuzzCase fuzz_case = CaseFromSeed(21);
  fuzz_case.sim.transfer_sites = 1;  // Same single-site view as MakeWorkload.
  auto trace = GenerateTrace(fuzz_case);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EventStream plain =
      RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel1);

  Workload workload = MakeWorkload({21});
  EventStream served = Serve(workload, 1);
  EXPECT_EQ(served, plain) << DiffStreams(served, plain, "serve", "pipeline");
}

TEST(ServeTest, MergedStreamIsWellFormed) {
  Workload workload = MakeWorkload({31, 32, 33, 34});
  EventStream served = Serve(workload, 2);
  Status status = ValidateWellFormed(served);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ServeTest, Level2RecoversLevel1) {
  Workload workload = MakeWorkload({41, 42});
  EventStream level1 = Serve(workload, 2, CompressionLevel::kLevel1);
  EventStream level2 = Serve(workload, 2, CompressionLevel::kLevel2);
  auto failure = DifferentialChecker::CheckLevel2Recovery(level1, level2);
  EXPECT_FALSE(failure.has_value())
      << failure->oracle << ": " << failure->detail;
}

TEST(ServeTest, RequestStopStillFlushesOpenEvents) {
  Workload workload = MakeWorkload({51, 52});
  ServeOptions options;
  options.num_shards = 2;
  options.queue_capacity = 2;
  SpireServer server(&workload, options);
  std::thread stopper([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server.RequestStop();
  });
  ServeResult result = server.Run();
  stopper.join();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_LE(result.epochs_processed, workload.num_epochs);
  // However much was ingested, every pipeline flushed: no open events.
  Status status = ValidateWellFormed(result.events);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ServeTest, MetricsJsonReportsRegistry) {
  Workload workload = MakeWorkload({61, 62});
  ServeOptions options;
  options.num_shards = 2;
  SpireServer server(&workload, options);
  ServeResult result = server.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"num_sites\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"process_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"merger\""), std::string::npos);
  EXPECT_NE(json.find("\"epochs_per_sec\""), std::string::npos);
  const std::uint64_t merged_epochs =
      server.metrics().merger().epochs_merged.value();
  EXPECT_EQ(merged_epochs, static_cast<std::uint64_t>(workload.num_epochs))
      << "one merged round per data epoch";
}

TEST(ServeTest, NormalizeRejectsOversizedWorkloads) {
  Workload workload;
  workload.sites.resize(kMaxSites + 1);
  EXPECT_FALSE(NormalizeWorkload(&workload).ok());
  Workload empty;
  EXPECT_FALSE(NormalizeWorkload(&empty).ok());
}

}  // namespace
}  // namespace spire::serve
