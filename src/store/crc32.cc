#include "store/crc32.h"

#include <array>
#include <cstring>

namespace spire {

namespace {

// Slice-by-8: table[0] is the classic byte-at-a-time CRC-32 table; table[k]
// advances a CRC by k additional zero bytes, so eight table lookups retire
// eight message bytes per iteration. All tables derive from the same
// 0xedb88320 (IEEE 802.3) polynomial — results are byte-identical to the
// byte-at-a-time loop, only faster.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;
};

Tables MakeTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = (prev >> 8) ^ tables.t[0][prev & 0xff];
    }
  }
  return tables;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const Tables kTables = MakeTables();
  const auto& t = kTables.t;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, sizeof(word));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    word = __builtin_bswap64(word);
#endif
    word ^= crc;
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][(word >> 56) & 0xff];
    bytes += 8;
    size -= 8;
  }
  for (; size > 0; --size, ++bytes) {
    crc = (crc >> 8) ^ t[0][(crc ^ *bytes) & 0xff];
  }
  return ~crc;
}

}  // namespace spire
