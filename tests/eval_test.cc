// Unit tests for src/eval: accuracy scoring, event folding and matching,
// compression accounting, detection delay, and the table printer.
#include <gtest/gtest.h>

#include "common/epc.h"
#include "eval/accuracy.h"
#include "eval/delay.h"
#include "eval/event_accuracy.h"
#include "eval/size_accounting.h"
#include "eval/table.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kCase = Obj(PackagingLevel::kCase, 2);

// -------------------------------------------------------------- Accuracy --

TEST(AccuracyTest, CountsLocationAndContainmentErrors) {
  PhysicalWorld world;
  ASSERT_TRUE(world.AddObject(kCase, 3).ok());
  ASSERT_TRUE(world.AddObject(kItem, 3).ok());
  ASSERT_TRUE(world.SetContainment(kItem, kCase).ok());

  InferenceResult result;
  ObjectEstimate item;
  item.object = kItem;
  item.location = 5;          // Wrong (truth 3).
  item.container = kCase;     // Right.
  result.estimates[kItem] = item;
  ObjectEstimate case_est;
  case_est.object = kCase;
  case_est.location = 3;      // Right.
  case_est.container = kItem; // Wrong (truth none).
  result.estimates[kCase] = case_est;

  AccuracyStats stats = EvaluateEstimates(result, world, kUnknownLocation);
  EXPECT_EQ(stats.location_total, 2u);
  EXPECT_EQ(stats.location_errors, 1u);
  EXPECT_EQ(stats.containment_total, 2u);
  EXPECT_EQ(stats.containment_errors, 1u);
  EXPECT_DOUBLE_EQ(stats.LocationErrorRate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.ContainmentErrorRate(), 0.5);
}

TEST(AccuracyTest, ExcludesWarmupLocation) {
  PhysicalWorld world;
  ASSERT_TRUE(world.AddObject(kItem, 0).ok());  // At the entry door.
  InferenceResult result;
  ObjectEstimate item;
  item.object = kItem;
  item.location = 9;
  result.estimates[kItem] = item;
  AccuracyStats stats = EvaluateEstimates(result, world, /*exclude=*/0);
  EXPECT_EQ(stats.location_total, 0u);
  EXPECT_EQ(stats.containment_total, 0u);
}

TEST(AccuracyTest, WithheldLocationsNotScored) {
  PhysicalWorld world;
  ASSERT_TRUE(world.AddObject(kItem, 3).ok());
  InferenceResult result;
  ObjectEstimate item;
  item.object = kItem;
  item.location = kUnknownLocation;
  item.withheld = true;
  result.estimates[kItem] = item;
  AccuracyStats stats = EvaluateEstimates(result, world, kUnknownLocation);
  EXPECT_EQ(stats.location_total, 0u);
  EXPECT_EQ(stats.containment_total, 1u);  // Containment still scored.
}

TEST(AccuracyTest, ExitedObjectsSkipped) {
  PhysicalWorld world;  // Empty: the object already left.
  InferenceResult result;
  ObjectEstimate item;
  item.object = kItem;
  item.location = 4;
  result.estimates[kItem] = item;
  AccuracyStats stats = EvaluateEstimates(result, world, kUnknownLocation);
  EXPECT_EQ(stats.location_total, 0u);
}

TEST(AccuracyTest, UnknownMatchingUnknownIsCorrect) {
  PhysicalWorld world;
  ASSERT_TRUE(world.AddObject(kItem, 3).ok());
  ASSERT_TRUE(world.Steal(kItem).ok());
  InferenceResult result;
  ObjectEstimate item;
  item.object = kItem;
  item.location = kUnknownLocation;
  result.estimates[kItem] = item;
  AccuracyStats stats = EvaluateEstimates(result, world, kUnknownLocation);
  EXPECT_EQ(stats.location_total, 1u);
  EXPECT_EQ(stats.location_errors, 0u);
}

TEST(AccuracyTest, Accumulates) {
  AccuracyStats a;
  a.location_total = 10;
  a.location_errors = 1;
  AccuracyStats b;
  b.location_total = 10;
  b.location_errors = 3;
  a += b;
  EXPECT_EQ(a.location_total, 20u);
  EXPECT_DOUBLE_EQ(a.LocationErrorRate(), 0.2);
}

// ------------------------------------------------------------ FoldEvents --

TEST(FoldEventsTest, PairsBecomeIntervals) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::StartLocation(kItem, 5, 25),
  };
  auto folded = FoldEvents(stream);
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ(folded[0].start, 10);
  EXPECT_EQ(folded[0].end, 20);
  EXPECT_EQ(folded[1].start, 25);
  EXPECT_EQ(folded[1].end, kInfiniteEpoch);  // Still open.
}

TEST(FoldEventsTest, LocationAndContainmentFoldIndependently) {
  EventStream stream{
      Event::StartContainment(kItem, kCase, 5),
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::EndContainment(kItem, kCase, 5, 30),
  };
  auto folded = FoldEvents(stream);
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ(folded[0].type, EventType::kStartContainment);
  EXPECT_EQ(folded[0].end, 30);
  EXPECT_EQ(folded[1].type, EventType::kStartLocation);
  EXPECT_EQ(folded[1].end, 20);
}

TEST(FoldEventsTest, MissingStaysPointEvent) {
  auto folded = FoldEvents({Event::Missing(kItem, 4, 9)});
  ASSERT_EQ(folded.size(), 1u);
  EXPECT_EQ(folded[0].type, EventType::kMissing);
  EXPECT_EQ(folded[0].start, 9);
  EXPECT_EQ(folded[0].end, 9);
}

// --------------------------------------------------- CompareEventStreams --

TEST(CompareTest, PerfectMatch) {
  EventStream truth{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
  };
  EventAccuracy accuracy =
      CompareEventStreams(truth, truth, EventClass::kAll);
  EXPECT_DOUBLE_EQ(accuracy.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(accuracy.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(accuracy.FMeasure(), 1.0);
}

TEST(CompareTest, ToleranceOnStartSkew) {
  EventStream truth{Event::StartLocation(kItem, 4, 100)};
  EventStream late{Event::StartLocation(kItem, 4, 150)};
  EXPECT_EQ(CompareEventStreams(late, truth, EventClass::kAll, 60)
                .matched_output,
            1u);
  EXPECT_EQ(CompareEventStreams(late, truth, EventClass::kAll, 30)
                .matched_output,
            0u);
}

TEST(CompareTest, WrongLocationNeverMatches) {
  EventStream truth{Event::StartLocation(kItem, 4, 100)};
  EventStream wrong{Event::StartLocation(kItem, 5, 100)};
  EventAccuracy accuracy =
      CompareEventStreams(wrong, truth, EventClass::kAll);
  EXPECT_EQ(accuracy.matched_output, 0u);
}

TEST(CompareTest, OneToOneMatching) {
  EventStream truth{Event::StartLocation(kItem, 4, 100)};
  EventStream doubled{
      Event::StartLocation(kItem, 4, 100),
      Event::EndLocation(kItem, 4, 100, 110),
      Event::StartLocation(kItem, 4, 120),  // Spurious flap.
  };
  EventAccuracy accuracy =
      CompareEventStreams(doubled, truth, EventClass::kAll);
  EXPECT_EQ(accuracy.output_events, 2u);
  EXPECT_EQ(accuracy.matched_output, 1u);
}

TEST(CompareTest, MissingMatchesTrueAbsenceGap) {
  EventStream truth{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 50),    // Gap [50, 80].
      Event::StartLocation(kItem, 5, 80),
      Event::EndLocation(kItem, 5, 80, 100),
  };
  EventStream output{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 60),
      Event::Missing(kItem, 4, 60),           // Inside the gap.
      Event::StartLocation(kItem, 5, 80),
      Event::EndLocation(kItem, 5, 80, 100),
  };
  EventAccuracy accuracy =
      CompareEventStreams(output, truth, EventClass::kAll, 10);
  EXPECT_EQ(accuracy.output_events, 3u);
  EXPECT_EQ(accuracy.matched_output, 3u);  // Both stays + the Missing.
  EXPECT_DOUBLE_EQ(accuracy.Precision(), 1.0);
}

TEST(CompareTest, MissingOutsideAnyGapIsFalsePositive) {
  EventStream truth{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 100),
      Event::StartLocation(kItem, 5, 100),  // No gap at all.
      Event::EndLocation(kItem, 5, 100, 200),
  };
  EventStream output{Event::Missing(kItem, 4, 50)};
  EventAccuracy accuracy =
      CompareEventStreams(output, truth, EventClass::kAll, 10);
  EXPECT_EQ(accuracy.matched_output, 0u);
}

TEST(CompareTest, TheftRecalledByLaterMissing) {
  EventStream truth{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 50),
      Event::Missing(kItem, 4, 50),  // Theft at 50.
  };
  EventStream detected{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 300),
      Event::Missing(kItem, 4, 300),  // Detected much later.
  };
  EventAccuracy accuracy =
      CompareEventStreams(detected, truth, EventClass::kAll, 10);
  EXPECT_EQ(accuracy.truth_events, 2u);
  EXPECT_EQ(accuracy.matched_truth, 2u);  // Stay + the theft.

  EventStream blind{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 300),
  };
  accuracy = CompareEventStreams(blind, truth, EventClass::kAll, 10);
  EXPECT_EQ(accuracy.matched_truth, 1u);  // The theft went undetected.
}

TEST(CompareTest, EventClassFilters) {
  EventStream truth{
      Event::StartLocation(kItem, 4, 0),
      Event::EndLocation(kItem, 4, 0, 50),
      Event::StartContainment(kItem, kCase, 0),
      Event::EndContainment(kItem, kCase, 0, 50),
  };
  EventAccuracy location =
      CompareEventStreams(truth, truth, EventClass::kLocationOnly);
  EXPECT_EQ(location.truth_events, 1u);
  EventAccuracy containment =
      CompareEventStreams(truth, truth, EventClass::kContainmentOnly);
  EXPECT_EQ(containment.truth_events, 1u);
  EventAccuracy all = CompareEventStreams(truth, truth, EventClass::kAll);
  EXPECT_EQ(all.truth_events, 2u);
}

TEST(CompareTest, StripLocationEventsRemovesOnlyThatLocation) {
  EventStream stream{
      Event::StartLocation(kItem, 0, 0),
      Event::EndLocation(kItem, 0, 0, 10),
      Event::StartLocation(kItem, 4, 10),
      Event::Missing(kItem, 0, 20),
      Event::StartContainment(kItem, kCase, 0),
  };
  EventStream stripped = StripLocationEvents(stream, 0);
  ASSERT_EQ(stripped.size(), 3u);
  EXPECT_EQ(stripped[0].location, 4);
  EXPECT_EQ(stripped[1].type, EventType::kMissing);  // Missing kept.
  EXPECT_EQ(stripped[2].type, EventType::kStartContainment);
}

// --------------------------------------------------------- Size accounting --

TEST(SizeAccountingTest, RatioUsesWireSizes) {
  EXPECT_DOUBLE_EQ(CompressionRatio(std::size_t{10}, std::size_t{100}),
                   10.0 * kEventWireBytes / (100.0 * kReadingWireBytes));
  EXPECT_DOUBLE_EQ(CompressionRatio(std::size_t{0}, std::size_t{100}), 0.0);
  EXPECT_DOUBLE_EQ(CompressionRatio(std::size_t{5}, std::size_t{0}), 0.0);
}

TEST(SizeAccountingTest, MessageClassCounters) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 0),
      Event::Missing(kItem, 4, 9),
      Event::StartContainment(kItem, kCase, 0),
      Event::EndContainment(kItem, kCase, 0, 9),
  };
  EXPECT_EQ(CountLocationMessages(stream), 2u);
  EXPECT_EQ(CountContainmentMessages(stream), 2u);
}

// ------------------------------------------------------------------ Delay --

TEST(DelayTest, ComputesDetectionDelays) {
  std::vector<Theft> thefts{
      {kItem, 100, 4},
      {kCase, 200, 5},
  };
  EventStream output{
      Event::Missing(kItem, 4, 130),   // Delay 30.
      Event::Missing(kCase, 5, 250),   // Delay 50.
  };
  DelayStats stats = EvaluateDetectionDelay(thefts, output);
  EXPECT_EQ(stats.thefts, 2u);
  EXPECT_EQ(stats.detected, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_delay, 40.0);
  EXPECT_EQ(stats.max_delay, 50);
  EXPECT_DOUBLE_EQ(stats.DetectionRate(), 1.0);
}

TEST(DelayTest, MissingBeforeTheftDoesNotCount) {
  std::vector<Theft> thefts{{kItem, 100, 4}};
  EventStream output{Event::Missing(kItem, 4, 50)};
  DelayStats stats = EvaluateDetectionDelay(thefts, output);
  EXPECT_EQ(stats.detected, 0u);
}

TEST(DelayTest, HorizonBoundsSearch) {
  std::vector<Theft> thefts{{kItem, 100, 4}};
  EventStream output{Event::Missing(kItem, 4, 100 + 5000)};
  DelayStats stats = EvaluateDetectionDelay(thefts, output, /*horizon=*/3600);
  EXPECT_EQ(stats.detected, 0u);
}

TEST(DelayTest, EmptyInputs) {
  DelayStats stats = EvaluateDetectionDelay({}, {});
  EXPECT_EQ(stats.thefts, 0u);
  EXPECT_DOUBLE_EQ(stats.DetectionRate(), 0.0);
}

// ------------------------------------------------------------------ Table --

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "123456"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| alpha | 1      |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 123456 |"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"1"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| 1 |"), std::string::npos);
}

TEST(TextTableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::Num(0.12345, 2), "0.12");
  EXPECT_EQ(TextTable::Num(3.0, 4), "3.0000");
}

}  // namespace
}  // namespace spire
