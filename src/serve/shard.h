// PipelineShard: one worker thread running full SPIRE pipelines for its
// assigned sites.
//
// The shard owns a bounded input queue of EpochWork (fed by the router)
// and a bounded output queue of SiteBatch (drained by the merger); both
// bounds are where backpressure forms. Per epoch it runs each owned site's
// SpirePipeline (inference + compression, reused unchanged from src/spire)
// over that site's readings, rewrites the resulting events into the global
// location id space, and emits one batch per site in ascending site order.
// A finish message flushes every pipeline's open events
// (EndLocation/EndContainment) so shutdown never truncates the stream.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "serve/merger.h"
#include "serve/metrics.h"
#include "serve/queue.h"
#include "serve/router.h"
#include "serve/workload.h"
#include "spire/pipeline.h"

namespace spire::serve {

class PipelineShard {
 public:
  /// `workload` and `metrics` must outlive the shard. `sites` are the
  /// ascending site indexes this shard owns (may be empty).
  PipelineShard(int shard_id, const Workload* workload, std::vector<int> sites,
                const PipelineOptions& options, std::size_t queue_capacity,
                ShardMetrics* metrics);

  PipelineShard(const PipelineShard&) = delete;
  PipelineShard& operator=(const PipelineShard&) = delete;

  ~PipelineShard();

  BoundedQueue<EpochWork>& input() { return input_; }
  BoundedQueue<SiteBatch>& output() { return output_; }
  int shard_id() const { return shard_id_; }

  /// Launches the worker thread. Call once.
  void Start();

  /// Joins the worker (the input queue must have been closed, directly or
  /// via the router's finish protocol). Idempotent.
  void Join();

 private:
  struct SiteState {
    int site = -1;
    LocationId location_offset = 0;
    std::unique_ptr<SpirePipeline> pipeline;
  };

  void Run();

  int shard_id_;
  std::vector<SiteState> sites_;
  ShardMetrics* metrics_;
  BoundedQueue<EpochWork> input_;
  BoundedQueue<SiteBatch> output_;
  std::thread thread_;
};

}  // namespace spire::serve
