// Deterministic random trace generation for the differential checking
// harness (src/check, driven by tools/spire_fuzz).
//
// A FuzzCase is a fully self-describing test input: a PCG-seeded SimConfig
// (deployment shape, movement cadence, containment churn, read rates) plus
// two shrinking knobs — an epoch truncation and a tag exclusion list. The
// same case always expands to the identical RecordedTrace, so a failing
// case serialized to a repro file (check/repro.h) replays bit-exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/sim_config.h"
#include "sim/transfer.h"
#include "stream/reader.h"
#include "stream/reading.h"

namespace spire {

/// One deterministic checking input.
struct FuzzCase {
  /// Simulation parameters; `sim.seed` drives all randomness.
  SimConfig sim;
  /// Truncate the trace to its first `max_epochs` epochs (0 = full run).
  /// The epoch-shrinking pass lowers this.
  Epoch max_epochs = 0;
  /// Readings of these tags are dropped from the trace. The tag-shrinking
  /// pass grows this list.
  std::vector<ObjectId> excluded_tags;

  /// The number of epochs this case actually expands to.
  Epoch EffectiveEpochs() const;
};

/// Derives a randomized small-but-varied warehouse scenario from a seed:
/// short traces, 1-2 pallets in flight, shelf periods from 1 to 30 epochs,
/// read rates from 0.5 to 1.0, optional theft and a patrolling reader.
FuzzCase CaseFromSeed(std::uint64_t seed);

/// A fully expanded trace: the reader deployment plus every epoch's raw
/// readings (post exclusion filtering), ready to feed a pipeline.
struct RecordedTrace {
  ReaderRegistry registry;
  /// The entry-door location (warm-up area invariant checks).
  LocationId entry_door = kUnknownLocation;
  /// epochs[e] holds the raw readings of epoch e.
  std::vector<EpochReadings> epochs;
  std::size_t total_readings = 0;
};

/// Expands a case into its trace. Fails only on invalid SimConfigs.
/// Transfer cases (sim.transfer_sites >= 2) expand to the multi-site
/// truck_transfer scenario collapsed into one merged deployment
/// (sim/transfer.h), so every single-deployment oracle fuzzes cross-site
/// movement too.
Result<RecordedTrace> GenerateTrace(const FuzzCase& fuzz_case);

/// The multi-site expansion of a transfer case (sim.transfer_sites >= 2),
/// with the case's epoch truncation and tag exclusions applied to both the
/// readings and the hop schedule. GenerateTrace returns the merged
/// single-deployment view of exactly this expansion; the distributed
/// oracle feeds it to src/dist unmerged. Fails on non-transfer cases.
Result<TransferTrace> GenerateTransferTrace(const FuzzCase& fuzz_case);

/// All distinct tags appearing in the trace, ascending (shrink candidates).
std::vector<ObjectId> TagsInTrace(const RecordedTrace& trace);

}  // namespace spire
