#include "inference/conflict.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/epc.h"
#include "obs/registry.h"

namespace spire {

ConflictStats ResolveConflicts(InferenceResult* result) {
  ConflictStats stats;

  // Group children by their chosen container (only containers that have an
  // estimate in this pass can be resolved against).
  std::unordered_map<ObjectId, std::vector<ObjectId>> children_of;
  for (const auto& [id, estimate] : result->estimates) {
    if (estimate.container == kNoObject) continue;
    if (!result->estimates.contains(estimate.container)) continue;
    children_of[estimate.container].push_back(id);
  }

  // Parents before children: higher packaging layers first, ids for
  // determinism. A case overridden by its pallet then resolves against its
  // own items with the updated location.
  std::vector<ObjectId> parents;
  parents.reserve(children_of.size());
  for (const auto& [parent, kids] : children_of) parents.push_back(parent);
  std::sort(parents.begin(), parents.end(), [](ObjectId a, ObjectId b) {
    int la = EpcLayer(a), lb = EpcLayer(b);
    if (la != lb) return la > lb;
    return a < b;
  });

  // Locations fixed by containment priority in this pass: once a child is
  // overridden (Rule I/III), its location is as trustworthy as an observed
  // one when the child is later processed as a parent itself — otherwise a
  // child poll could undo the override.
  std::unordered_set<ObjectId> pinned;

  for (ObjectId parent_id : parents) {
    ObjectEstimate& parent = result->estimates.at(parent_id);
    std::vector<ObjectId>& kids = children_of.at(parent_id);
    std::sort(kids.begin(), kids.end());
    const bool parent_known = parent.observed || pinned.contains(parent_id);

    if (!parent_known && !parent.withheld) {
      // Rules II/III preamble: poll the children for a majority location.
      std::map<LocationId, int> votes;
      for (ObjectId child_id : kids) {
        const ObjectEstimate& child = result->estimates.at(child_id);
        if (child.location != kUnknownLocation) ++votes[child.location];
      }
      LocationId best = kUnknownLocation;
      int best_count = 0;
      for (const auto& [location, count] : votes) {
        if (count > best_count) {
          best_count = count;
          best = location;
        }
      }
      if (best != kUnknownLocation &&
          2 * best_count > static_cast<int>(kids.size()) &&
          best != parent.location) {
        parent.location = best;
        parent.withheld = false;
        ++stats.parents_repositioned;
      }
    }

    if (parent.withheld) continue;  // No usable parent location this pass.
    // A missing parent is not a color: an object may be reported missing
    // while its containment stands (Section V-A), so there is no location
    // conflict to resolve against it.
    if (parent.location == kUnknownLocation) continue;

    for (ObjectId child_id : kids) {
      ObjectEstimate& child = result->estimates.at(child_id);
      if (child.location == parent.location) continue;
      // Likewise, a child inferred missing stays missing: Missing events
      // nest inside containment pairs, and keeping the verdict is what
      // detects objects that silently vanished from their containers.
      if (child.location == kUnknownLocation && !child.observed) continue;
      if (child.observed) {
        if (parent.observed) continue;  // Cannot happen for a live edge.
        // Rule II: an observed child that still disagrees ends the
        // containment relationship.
        child.container = kNoObject;
        child.container_prob = 0.0;
        child.container_runner_up = 0.0;
        ++stats.containments_ended;
      } else {
        // Rules I and III: containment overrides the inferred child; the
        // child adopts the parent's posterior (and its runner-up — the
        // child's own candidates are no longer in play).
        child.location = parent.location;
        child.location_prob = parent.location_prob;
        child.location_runner_up = parent.location_runner_up;
        child.withheld = parent.location == kUnknownLocation
                             ? child.withheld
                             : false;
        pinned.insert(child_id);
        ++stats.children_overridden;
      }
    }
  }
  if (obs::Enabled()) {
    auto& registry = obs::Registry::Global();
    static obs::Counter* children_overridden =
        registry.GetCounter("inference", "conflict_children_overridden");
    static obs::Counter* parents_repositioned =
        registry.GetCounter("inference", "conflict_parents_repositioned");
    static obs::Counter* containments_ended =
        registry.GetCounter("inference", "conflict_containments_ended");
    children_overridden->Add(stats.children_overridden);
    parents_repositioned->Add(stats.parents_repositioned);
    containments_ended->Add(stats.containments_ended);
  }
  return stats;
}

}  // namespace spire
