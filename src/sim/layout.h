// The warehouse layout: locations and the six reader groups of Section VI-A.
#pragma once

#include <vector>

#include "sim/sim_config.h"
#include "stream/reader.h"

namespace spire {

/// The fixed layout built from a SimConfig: one location + reader for the
/// entry door, receiving belt, packaging area, outgoing belt, and exit door,
/// plus `num_shelves` shelf locations each with its own (slow) shelf reader.
struct WarehouseLayout {
  ReaderRegistry registry;

  LocationId entry_door = kUnknownLocation;
  LocationId receiving_belt = kUnknownLocation;
  std::vector<LocationId> shelves;
  LocationId packaging = kUnknownLocation;
  LocationId outgoing_belt = kUnknownLocation;
  LocationId exit_door = kUnknownLocation;

  ReaderId entry_reader = kNoReader;
  ReaderId receiving_belt_reader = kNoReader;
  std::vector<ReaderId> shelf_readers;
  ReaderId packaging_reader = kNoReader;
  ReaderId outgoing_belt_reader = kNoReader;
  ReaderId exit_reader = kNoReader;
  /// The patrolling mobile reader (kNoReader when not deployed).
  ReaderId patrol_reader = kNoReader;

  /// Builds the layout; fails only on invalid configs.
  static Result<WarehouseLayout> Build(const SimConfig& config);
};

}  // namespace spire
