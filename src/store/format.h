// On-disk layout of the block-compressed event archive (see DESIGN.md
// "On-disk formats").
//
// A segment file is:
//
//   file header: kArchiveMagic (4) + u16 version + u16 reserved   = 8 bytes
//   block*:      block header (36 bytes) + encoded payload
//
// Block header layout (little-endian):
//
//   offset  size  field
//   0       4     kArchiveBlockMarker
//   4       4     event count
//   8       8     min epoch (over the events' primary timestamps)
//   16      8     max epoch
//   24      4     payload size in bytes
//   28      4     CRC-32 of the payload
//   32      4     CRC-32 of header bytes [0, 32)
//
// The header CRC makes a torn or overwritten tail detectable before the
// payload size is trusted; the payload CRC catches bit rot inside a block.
// Recovery rule (ArchiveWriter::Open / ArchiveReader scan): blocks are read
// sequentially and the file is logically truncated at the first header or
// payload that fails validation — a crash mid-append loses at most the block
// being written.
//
// The index sidecar (`<segment>.spix`, sparkey-style) is a rebuildable
// cache: kArchiveIndexMagic + u16 version + u16 reserved, u64 covered
// segment bytes, u64 block count, the block directory, per-object posting
// lists of block indexes, and a trailing CRC-32 over everything after the
// 8-byte header. A sidecar whose covered size or CRC disagrees with the
// segment is ignored and rebuilt by scanning.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "common/wire.h"
#include "compress/event.h"

namespace spire {

/// Bytes of the segment (and index) file header.
inline constexpr std::size_t kArchiveHeaderBytes = 8;

/// Bytes of one block header.
inline constexpr std::size_t kBlockHeaderBytes = 36;

/// Upper bound on one block's encoded payload; a header whose payload size
/// exceeds it is treated as a torn tail even if its CRC matches by chance.
inline constexpr std::uint32_t kMaxBlockPayloadBytes = 1u << 28;

/// Directory entry of one block: where it lives and what it covers.
struct BlockMeta {
  std::uint64_t offset = 0;  ///< Segment-file offset of the block header.
  std::uint32_t count = 0;   ///< Events in the block.
  Epoch min_epoch = kNeverEpoch;  ///< Smallest primary timestamp.
  Epoch max_epoch = kNeverEpoch;  ///< Largest primary timestamp.

  bool operator==(const BlockMeta&) const = default;

  /// True when the block may hold events with primary timestamps in
  /// [lo, hi] — the time-range scan's skip test.
  bool Intersects(Epoch lo, Epoch hi) const {
    return min_epoch <= hi && lo <= max_epoch;
  }
};

/// The timestamp a message carries on the wire and the archive orders and
/// indexes by: V_e for End* messages, V_s otherwise (serde.h's rule).
inline Epoch PrimaryEpoch(const Event& event) {
  return (event.type == EventType::kEndLocation ||
          event.type == EventType::kEndContainment)
             ? event.end
             : event.start;
}

}  // namespace spire
