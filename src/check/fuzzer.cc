#include "check/fuzzer.h"

#include <chrono>
#include <cinttypes>
#include <filesystem>

namespace spire {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

FuzzStats Fuzz(const FuzzOptions& options, const DifferentialChecker& checker,
               std::FILE* log) {
  const auto start = std::chrono::steady_clock::now();
  FuzzStats stats;
  CheckStats check_stats;

  for (std::uint64_t seed : options.seeds) {
    if (stats.failures >= options.max_failures) break;
    if (options.budget_seconds > 0.0 && stats.cases_run >= options.min_cases &&
        SecondsSince(start) > options.budget_seconds) {
      if (log != nullptr) {
        std::fprintf(log, "budget exhausted after %zu cases\n",
                     stats.cases_run);
      }
      break;
    }

    FuzzCase fuzz_case = CaseFromSeed(seed);
    ++stats.cases_run;
    auto failure = checker.Check(fuzz_case, &check_stats);
    if (!failure) continue;

    ++stats.failures;
    if (log != nullptr) {
      std::fprintf(log, "seed %" PRIu64 ": oracle '%s' violated\n%s\n", seed,
                   failure->oracle.c_str(), failure->detail.c_str());
    }

    FuzzCase minimized = fuzz_case;
    OracleFailure minimized_failure = *failure;
    if (options.shrink_attempts > 0) {
      ShrinkOutcome outcome = MinimizeCase(
          fuzz_case, *failure,
          [&](const FuzzCase& candidate) {
            return checker.Check(candidate, &check_stats);
          },
          options.shrink_attempts);
      minimized = outcome.minimized;
      minimized_failure = outcome.failure;
      if (log != nullptr) {
        std::fprintf(log,
                     "seed %" PRIu64 ": minimized to %lld epochs, %zu "
                     "excluded tags (%d shrink runs)\n",
                     seed, static_cast<long long>(minimized.EffectiveEpochs()),
                     minimized.excluded_tags.size(), outcome.attempts);
      }
    }

    std::error_code ec;
    std::filesystem::create_directories(options.repro_dir, ec);
    const std::string path =
        (std::filesystem::path(options.repro_dir) /
         ("repro-seed" + std::to_string(seed) + ".txt"))
            .string();
    Status written = WriteReproFile(path, minimized, &minimized_failure);
    if (written.ok()) {
      stats.repro_paths.push_back(path);
      if (log != nullptr) std::fprintf(log, "repro: %s\n", path.c_str());
    } else if (log != nullptr) {
      std::fprintf(log, "failed to write repro: %s\n",
                   written.ToString().c_str());
    }
  }

  stats.traces_run = check_stats.traces_run;
  stats.elapsed_seconds = SecondsSince(start);
  if (log != nullptr) {
    std::fprintf(log,
                 "spire_fuzz: %zu cases, %zu pipeline traces, %zu "
                 "failure(s) in %.1fs\n",
                 stats.cases_run, stats.traces_run, stats.failures,
                 stats.elapsed_seconds);
  }
  return stats;
}

}  // namespace spire
