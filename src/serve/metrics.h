// Runtime observability of the serving layer.
//
// Instruments are the obs registry's value types (obs::Counter /
// obs::Gauge / obs::Histogram): relaxed atomics recorded lock-free from
// shard threads and sampled live by readers (numbers are individually
// consistent, not a snapshot). The instruments live *here*, per server run,
// rather than in the process-global registry, so `spire_cli serve --stats`
// reports exactly one run; the recording sites additionally fold aggregates
// into the global "serve" module when obs::Enabled(). The registry is sized
// once at server construction and never reallocates. `Metrics::ToJson`
// renders the whole registry as one JSON object — the payload behind
// `spire_cli serve --stats` and the shutdown dump (schema in DESIGN.md §8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace spire::serve {

/// Health counters of one bounded queue.
struct QueueMetrics {
  /// Highest depth ever observed at push time.
  obs::Gauge depth_highwater;
  /// Pushes that found the queue full and had to block (backpressure).
  obs::Counter blocked_pushes;
  /// Pops that found the queue empty and had to block.
  obs::Counter blocked_pops;
  /// TryPush calls rejected on a full queue.
  obs::Counter dropped;

  /// Folds a depth observation into the high-water mark.
  void RecordDepth(std::uint64_t depth) {
    depth_highwater.SetMax(static_cast<std::int64_t>(depth));
  }

  std::string ToJson() const;
};

/// Per-shard pipeline counters.
struct ShardMetrics {
  obs::Counter epochs;    ///< Epoch rounds processed.
  obs::Counter events;    ///< Output events emitted.
  obs::Counter readings;  ///< Raw readings consumed.
  obs::Counter busy_us;   ///< Time spent inside pipelines.
  /// Pipeline-internal split of busy time (from SpirePipeline::last_costs):
  /// graph update vs inference. Watching inference_us against epochs shows
  /// the effect of delta-driven inference (DESIGN.md §10) per shard.
  obs::Counter update_us;
  obs::Counter inference_us;
  /// Wall time of one epoch round across all of the shard's sites (us).
  obs::Histogram process_latency;
  QueueMetrics input_queue;
  QueueMetrics output_queue;

  /// Epoch rounds per busy second (0 when idle).
  double EpochsPerBusySecond() const;
};

/// Merger-side counters.
struct MergerMetrics {
  obs::Counter epochs_merged;
  obs::Counter events_out;
  /// Time the merger spent blocked waiting for shard batches.
  obs::Counter wait_us;
};

/// The serving layer's metrics registry: one ShardMetrics per shard plus
/// the merger. Allocated once; pointers into it stay valid for the
/// registry's lifetime.
class Metrics {
 public:
  explicit Metrics(int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardMetrics& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const ShardMetrics& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }
  MergerMetrics& merger() { return merger_; }
  const MergerMetrics& merger() const { return merger_; }

  /// Renders the registry. `wall_seconds` is the run's wall-clock duration
  /// (drives the aggregate epochs/s figure); pass 0 for a live sample.
  std::string ToJson(double wall_seconds, int num_sites) const;

 private:
  // unique_ptr keeps the atomics' addresses stable (vector growth would
  // copy, and atomics are not copyable anyway).
  std::vector<std::unique_ptr<ShardMetrics>> shards_;
  MergerMetrics merger_;
};

}  // namespace spire::serve
