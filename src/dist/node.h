// The node side of the distributed serving protocol: one process (or
// thread) hosting the full SPIRE pipelines of the sites it owns, fed raw
// readings over a Conn and returning output events, handoffs, and epoch
// barriers. See dist/coordinator.h for the other side and DESIGN.md §12
// for the protocol.
#pragma once

#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "serve/workload.h"
#include "spire/pipeline.h"

namespace spire::dist {

/// Configuration of one node.
struct NodeConfig {
  int node_id = 0;
  /// Global site indexes this node owns, ascending.
  std::vector<int> sites;
  /// The full workload — the node reads only its own sites' registries and
  /// location offsets; raw readings arrive over the wire. Must outlive the
  /// run.
  const serve::Workload* workload = nullptr;
  PipelineOptions pipeline;
};

/// Serves one node over `conn` until the finish barrier: Hello exchange,
/// then per EpochWork, for every owned site in ascending order — implant
/// the stashed handoffs arriving at (site, epoch), stage the epoch's
/// capture orders, process the epoch, and return the site's events as a
/// SiteBatch — followed by the epoch's captured Handoff frames and a
/// Barrier. A finish EpochWork flushes every pipeline and ends the run.
/// Returns the first protocol or transport error.
Status RunDistNode(const NodeConfig& config, Conn* conn);

}  // namespace spire::dist
