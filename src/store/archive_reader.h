// Read-side of the block-compressed event archive: three access paths that
// never decode more blocks than they must.
//
//   ScanAll     every block, in order — reproduces the archived stream.
//   ScanRange   only blocks whose [min, max] epoch range intersects the
//               query (block directory skip test), then filters events by
//               primary timestamp.
//   ScanObject  only blocks on the object's posting list.
//
// Open() loads the index sidecar when it is present and consistent with
// the segment; otherwise (crash before Close, sidecar deleted or corrupt)
// it falls back to a validating full scan of the segment, honoring the
// same torn-tail rule as ArchiveWriter recovery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "store/segment.h"

namespace spire {

/// Immutable view over one archive segment.
class ArchiveReader {
 public:
  /// Opens a segment, via its sidecar or a validating rebuild scan.
  static Result<ArchiveReader> Open(const std::string& path);

  /// Decodes every block: the exact archived EventStream.
  Result<EventStream> ScanAll() const;

  /// Events whose primary timestamp (store/format.h) lies in [lo, hi],
  /// decoding only intersecting blocks. Equals the same filter applied to
  /// ScanAll().
  Result<EventStream> ScanRange(Epoch lo, Epoch hi) const;

  /// Every event of one object, decoding only its posting-list blocks.
  Result<EventStream> ScanObject(ObjectId object) const;

  // --- Directory ----------------------------------------------------------

  const std::vector<BlockMeta>& blocks() const { return info_.blocks; }
  std::size_t num_blocks() const { return info_.blocks.size(); }
  std::uint64_t num_events() const { return info_.events; }
  std::uint64_t segment_bytes() const { return info_.valid_bytes; }
  /// How many blocks a ScanRange(lo, hi) would decode (bench/CLI stat).
  std::size_t BlocksInRange(Epoch lo, Epoch hi) const;
  /// How many blocks a ScanObject(object) would decode.
  std::size_t BlocksForObject(ObjectId object) const;
  /// True when the sidecar was missing or stale and the directory was
  /// rebuilt by scanning the segment.
  bool index_rebuilt() const { return index_rebuilt_; }
  const std::string& path() const { return path_; }

 private:
  ArchiveReader(std::string path, SegmentInfo info, bool index_rebuilt);

  /// Reads, validates, and decodes the listed blocks in index order.
  Result<EventStream> DecodeBlocks(
      const std::vector<std::uint32_t>& indexes) const;

  std::string path_;
  SegmentInfo info_;
  bool index_rebuilt_ = false;
};

/// Makes a range- or object-restricted selection well-formed again by
/// re-materializing, in place, the Start message of every End message whose
/// Start falls outside the selection (archived events are self-contained:
/// an End carries its reconstructed V_s). Needed before handing a
/// restricted scan to ValidateWellFormed, EventLog::Build, or
/// WriteEventFile readers.
EventStream RepairRestrictedStream(const EventStream& selection);

}  // namespace spire
