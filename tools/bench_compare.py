#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Every bench binary writes a flat {"key": number, ...} report via
BenchReport (bench/bench_util.h). This script diffs a fresh run against
the baseline committed at the repo root and flags regressions:

  * keys matching *epochs_per_sec* or *speedup* are higher-is-better;
  * keys matching *_s_per_epoch, *_seconds, or *_over_disabled (the
    expt11 observability overhead ratios) are lower-is-better;
  * everything else (counts, peak_rss_bytes, hardware_threads) is
    reported but never gated.

By default the comparison is SOFT: regressions are printed and the exit
code is 0, because wall-clock on shared CI machines is too noisy for a
hard gate (same policy as the expt11 disabled-overhead check in
tools/ci.sh). Pass --hard to exit 1 on any regression beyond the
threshold — useful on a quiet machine when validating a perf change.

  tools/bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
                         [--hard]
"""

import argparse
import json
import sys

HIGHER_BETTER = ("epochs_per_sec", "speedup")
LOWER_BETTER = ("_s_per_epoch", "_seconds", "_us", "_over_disabled")
IGNORED = ("peak_rss_bytes", "hardware_threads", "bench")


def classify(key):
    if any(key.endswith(s) or s in key for s in IGNORED):
        return None
    if any(s in key for s in HIGHER_BETTER):
        return "higher"
    if any(key.endswith(s) for s in LOWER_BETTER):
        return "lower"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression tolerated before flagging (default 0.25)",
    )
    parser.add_argument(
        "--hard",
        action="store_true",
        help="exit 1 on regression instead of just reporting",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    regressions = []
    rows = []
    for key in sorted(set(baseline) & set(fresh)):
        direction = classify(key)
        if direction is None:
            continue
        old, new = baseline[key], fresh[key]
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        if old == 0:
            continue
        ratio = new / old
        # Express change so that negative is always a regression.
        change = ratio - 1.0 if direction == "higher" else 1.0 - ratio
        flag = ""
        if change < -args.threshold:
            flag = "REGRESSION"
            regressions.append(key)
        rows.append((key, old, new, change, flag))

    if not rows:
        print("bench_compare: no comparable keys "
              f"between {args.baseline} and {args.fresh}")
        return 0

    width = max(len(r[0]) for r in rows)
    for key, old, new, change, flag in rows:
        print(f"  {key:<{width}}  {old:>12.6g}  ->  {new:>12.6g}  "
              f"{change:+7.1%}  {flag}")

    if regressions:
        print(f"bench_compare: {len(regressions)} key(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        if args.hard:
            return 1
        print("bench_compare: soft mode, not failing (pass --hard to gate)")
    else:
        print("bench_compare: no regressions beyond "
              f"{args.threshold:.0%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
