// SMURF end-to-end baseline: dedup -> adaptive smoothing -> reader-location
// mapping -> level-1 range compression (the extension described in
// Section VI-D for comparability with SPIRE's output).
#pragma once

#include "compress/compressor.h"
#include "compress/event.h"
#include "smurf/smurf.h"
#include "stream/dedup.h"
#include "stream/reader.h"

namespace spire {

/// Drop-in counterpart of SpirePipeline producing location-only events.
class SmurfPipeline {
 public:
  SmurfPipeline(const ReaderRegistry* registry, SmurfOptions options = {})
      : cleaner_(registry, options) {}

  /// Processes one epoch of raw readings; appends output events.
  void ProcessEpoch(Epoch epoch, EpochReadings readings, EventStream* out) {
    Deduplicate(&readings);
    for (const ObjectStateEstimate& estimate :
         cleaner_.ProcessEpoch(epoch, readings)) {
      compressor_.Report(estimate, epoch, out);
    }
  }

  /// Closes all open output events.
  void Finish(Epoch epoch, EventStream* out) {
    compressor_.Finish(epoch, out);
  }

  const SmurfCleaner& cleaner() const { return cleaner_; }

 private:
  SmurfCleaner cleaner_;
  RangeCompressor compressor_;
};

}  // namespace spire
