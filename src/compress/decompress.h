// On-demand decompression of a level-2 stream into a level-1 stream
// (Section V-C).
//
// A level-2 stream suppresses location updates of contained objects; this
// routine reconstructs them so the result is directly queriable by event
// processors. Per time step it (1) applies all containment updates to its
// containment hierarchy, (2) replays location updates, copying each
// container's update to its transitive contents, and (3) reconciles any
// contained object whose reconstructed location drifted from its top-level
// container. Duplicate events — an update reporting an object at a location
// it is already known to occupy — are removed, exactly as the paper's
// routine prescribes.
#pragma once

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "compress/event.h"

namespace spire {

/// Streaming level-2 -> level-1 decompressor. Feed events in emission order;
/// events are buffered per epoch and flushed when a later epoch arrives (or
/// on Finish).
class Decompressor {
 public:
  Decompressor() = default;

  /// Consumes one level-2 event; appends reconstructed level-1 events for
  /// any *earlier* epochs that are now complete.
  void Push(const Event& event, EventStream* out);

  /// Flushes the last buffered epoch.
  void Finish(EventStream* out);

  /// Convenience: decompresses a whole stream at once.
  static EventStream DecompressAll(const EventStream& level2);

 private:
  /// The epoch an event belongs to: V_e for End* messages, V_s otherwise.
  static Epoch EventEpoch(const Event& event);

  void FlushEpoch(EventStream* out);
  void CancelChurn(EventStream* staged);
  void ApplyContainment(const Event& event, EventStream* out);
  void ApplyLocation(const Event& event, EventStream* out);
  void EmitStart(ObjectId object, LocationId location, Epoch epoch,
                 bool derived, EventStream* out);
  void EmitEndIfOpen(ObjectId object, Epoch epoch, EventStream* out);
  void PropagateStart(ObjectId parent, LocationId location, Epoch epoch,
                      EventStream* out);
  void PropagateEnd(ObjectId parent, LocationId location, Epoch epoch,
                    EventStream* out);
  void Reconcile(Epoch epoch, EventStream* out);

  struct OpenLocation {
    LocationId location = kUnknownLocation;
    Epoch start = kNeverEpoch;
    /// True when this stay was reconstructed from a container's events
    /// (propagation / reconciliation) rather than an explicit StartLocation.
    /// Only derived stays end with their carrying containment; an explicit
    /// stay outlives it, exactly as in the compressor's bookkeeping.
    bool derived = false;
  };

  std::vector<Event> buffered_;
  Epoch buffered_epoch_ = kNeverEpoch;
  std::unordered_map<ObjectId, ObjectId> parent_;
  std::unordered_map<ObjectId, std::set<ObjectId>> children_;
  std::unordered_map<ObjectId, OpenLocation> open_;
  /// Objects whose containment changed in the epoch being flushed; only
  /// these need reconciliation.
  std::vector<ObjectId> dirty_;
  /// Objects flagged Missing and not resighted yet; containment propagation
  /// skips them (and their subtrees).
  std::unordered_set<ObjectId> missing_;
  /// Objects with a Missing event in the epoch being flushed. Their closing
  /// End does not propagate: a vanished container does not take its
  /// contents' stays with it (the compressor skips propagation the same
  /// way); the children's fate arrives with their own messages.
  std::unordered_set<ObjectId> vanishing_;
  /// Objects whose stay was closed during the current flush; Reconcile may
  /// rebuild exactly these (plus currently open derived stays). An object
  /// with no stay at all was never located — a containment edge alone does
  /// not place it anywhere (first sightings are always explicit). The
  /// companion vector keeps the closes in emission order so reconciliation
  /// output is deterministic.
  std::unordered_set<ObjectId> closed_this_epoch_;
  std::vector<ObjectId> closed_order_;
  /// Where each stay closed during the current flush. A Missing whose
  /// location differs from the last close reveals a silent hop: the stay
  /// was carried along by a container's move after its containment ended
  /// earlier in this same epoch (level 1 shows the zero-length visit).
  std::unordered_map<ObjectId, LocationId> closed_at_;
  /// Every object that ever had a stay. A container's moves propagate to a
  /// stay-less child only if the child has been located before (mirrors the
  /// compressor's last-known-location bookkeeping); a never-located child
  /// gains no stay from its container.
  std::unordered_set<ObjectId> located_;
};

}  // namespace spire
