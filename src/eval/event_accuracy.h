// Event-stream accuracy: precision, recall and F-measure of an output event
// stream against the compressed ground-truth stream (Expt 7).
//
// Streams are first folded into *ranged events* (a Start/End pair becomes a
// single interval; Missing stays a point event). An output event matches a
// ground-truth event when the type, object, and target (location or
// container) agree and the start timestamps differ by at most a tolerance;
// matching is greedy in start order and one-to-one.
#pragma once

#include <cstddef>
#include <vector>

#include "compress/event.h"
#include "compress/fold.h"

namespace spire {

/// What to score.
enum class EventClass {
  kAll,              ///< Location, containment, and missing events.
  kLocationOnly,     ///< Location + missing (the SMURF-comparable subset).
  kContainmentOnly,  ///< Containment events only.
};

/// Precision / recall / F-measure result. Stays are matched one-to-one and
/// credit both sides; an output Missing credits precision when it falls in
/// a truth absence gap, and a truth Missing (theft) credits recall when the
/// output ever reports the object missing afterwards.
struct EventAccuracy {
  std::size_t output_events = 0;
  std::size_t truth_events = 0;
  std::size_t matched_output = 0;
  std::size_t matched_truth = 0;

  double Precision() const {
    return output_events == 0 ? 0.0
                              : static_cast<double>(matched_output) /
                                    static_cast<double>(output_events);
  }
  double Recall() const {
    return truth_events == 0 ? 0.0
                             : static_cast<double>(matched_truth) /
                                   static_cast<double>(truth_events);
  }
  double FMeasure() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Scores `output` against `truth`. `start_tolerance` bounds the allowed
/// start-timestamp skew (inference reacts at reader cadence, so the default
/// covers the slowest shelf period of the paper's setup).
EventAccuracy CompareEventStreams(const EventStream& output,
                                  const EventStream& truth,
                                  EventClass event_class,
                                  Epoch start_tolerance = 60);

/// Removes Start/EndLocation events at `location`. SPIRE emits no output
/// for the warm-up (entry door) area, so F-measure comparisons strip that
/// location from every stream to compare like for like.
EventStream StripLocationEvents(const EventStream& stream,
                                LocationId location);

}  // namespace spire
