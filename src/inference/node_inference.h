// Node inference (Section IV-B): the most likely location of an unobserved
// object, or its absence from every known location.
//
// A probability distribution is built over (1) the node's most recent color,
// faded by (now - seen_at)^-theta, (2) colors propagated through incident
// edges from neighbors whose color is known (observed, or inferred in an
// earlier wave), weighted by the edges' inference probabilities, and (3) the
// special color "unknown" (Eqs. 3-4).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "inference/edge_inference.h"
#include "inference/params.h"

namespace spire {

/// The outcome of node inference at one node.
struct NodeInferenceResult {
  /// argmax color; kUnknownLocation when "unknown" wins.
  LocationId location = kUnknownLocation;
  double probability = 0.0;
  /// Probability of the second-best candidate (including "unknown"); feeds
  /// the explain channel's posterior gap.
  double runner_up = 0.0;
};

/// Computes Eqs. 3-4. The caller supplies a color oracle mapping a neighbor
/// to its currently known color (kUnknownLocation when the neighbor's color
/// is not yet known in this pass).
class NodeInferencer {
 public:
  /// `location_periods[l]` is the reading period of the reader at location
  /// l, used to normalize the fading age into missed reading opportunities
  /// (see InferenceParams::normalize_age_by_reader_period). An empty vector
  /// means raw epoch ages.
  NodeInferencer(const Graph* graph, const InferenceParams* params,
                 const EdgeInferencer* edges,
                 std::vector<Epoch> location_periods = {})
      : graph_(graph),
        params_(params),
        edges_(edges),
        location_periods_(std::move(location_periods)) {}

  /// A function returning the known color of a node in the current pass.
  using ColorOracle = std::function<LocationId(const Node&)>;

  /// Runs node inference at an uncolored node.
  NodeInferenceResult InferAt(const Node& node, Epoch now,
                              const ColorOracle& color_of) const;

  /// The fading age used for a node: epochs since last observation, divided
  /// by the reading period of its last location when normalization is on.
  double FadingAge(const Node& node, Epoch now) const;

 private:
  const Graph* graph_;
  const InferenceParams* params_;
  const EdgeInferencer* edges_;
  std::vector<Epoch> location_periods_;
};

}  // namespace spire
