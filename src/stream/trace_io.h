// Binary raw-reading trace files.
//
// A trace file carries the raw RFID stream for offline processing and
// replay. Layout (big-endian):
//
//   header: "SPTR" magic + u16 version
//   one block per epoch with readings:
//     i64 epoch, u32 count, then `count` records of kReadingWireBytes each:
//       12-byte EPC (4 zero bytes + compact 64-bit id),
//       u16 reader id, u16 interrogation tick
//
// Epoch blocks must be written in increasing epoch order; epochs with no
// readings may be skipped.
#pragma once

#include <iosfwd>

#include "common/status.h"
#include "stream/reading.h"

namespace spire {

/// Streaming writer. The caller owns the stream and its lifetime.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream* out) : out_(out) {}

  /// Writes the file header. Call once, first.
  Status WriteHeader();

  /// Writes one epoch block (no-op for empty readings). All readings must
  /// carry `epoch`.
  Status WriteEpoch(Epoch epoch, const EpochReadings& readings);

 private:
  std::ostream* out_;
  Epoch last_epoch_ = kNeverEpoch;
};

/// Streaming reader.
class TraceReader {
 public:
  explicit TraceReader(std::istream* in) : in_(in) {}

  /// Validates the header. Call once, first.
  Status ReadHeader();

  /// Reads the next epoch block into (epoch, readings). Returns false at a
  /// clean end of file, an error on a malformed block.
  Result<bool> NextEpoch(Epoch* epoch, EpochReadings* readings);

 private:
  std::istream* in_;
};

}  // namespace spire
