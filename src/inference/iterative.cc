#include "inference/iterative.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* passes_complete;
  obs::Counter* passes_partial;
  obs::Counter* waves;
  obs::Counter* edges_pruned;
  obs::Counter* estimates;
};

const Instruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("inference", "passes_complete"),
      registry.GetCounter("inference", "passes_partial"),
      registry.GetCounter("inference", "waves"),
      registry.GetCounter("inference", "edges_pruned"),
      registry.GetCounter("inference", "estimates"),
  };
  return &instruments;
}

}  // namespace

std::vector<Epoch> IterativeInference::LocationPeriods(
    const ReaderRegistry* registry) {
  if (registry == nullptr) return {};
  return spire::LocationPeriods(*registry);
}

EdgeInferenceResult IterativeInference::InferEdgesAndPrune(
    const Node& node, InferenceResult* result) {
  std::vector<EdgeId> prunable;
  EdgeInferenceResult inferred = edge_inferencer_.InferAt(node, &prunable);
  for (EdgeId id : prunable) {
    if (id == inferred.best_edge) {
      // The chosen edge itself fell below the threshold: the containment
      // evidence is too weak to keep.
      inferred.best_edge = kNoEdge;
      inferred.best_parent = kNoObject;
      inferred.best_prob = 0.0;
      inferred.runner_up_prob = 0.0;
    }
    graph_->RemoveEdge(id);
    ++result->edges_pruned;
  }
  return inferred;
}

InferenceResult IterativeInference::Run(Epoch now, bool complete) {
  InferenceResult result;
  result.epoch = now;
  result.complete = complete;
  edge_inferencer_.BeginPass();

  // Colors known so far in this pass (observed or committed estimates).
  std::unordered_map<ObjectId, LocationId> known_color;
  const auto color_of = [&](const Node& node) -> LocationId {
    if (graph_->IsColored(node)) return node.recent_color;
    auto it = known_color.find(node.id);
    return it == known_color.end() ? kUnknownLocation : it->second;
  };

  std::unordered_set<ObjectId> visited;
  std::vector<ObjectId> wave = graph_->ColoredNodes();
  for (ObjectId id : wave) visited.insert(id);

  // Wave d = 0: the observed nodes. Edge inference estimates their most
  // likely containers; their location is the observed color.
  for (ObjectId id : wave) {
    Node* node = graph_->FindNode(id);
    if (node == nullptr) continue;
    EdgeInferenceResult edges = InferEdgesAndPrune(*node, &result);
    ObjectEstimate estimate;
    estimate.object = id;
    estimate.location = node->recent_color;
    estimate.location_prob = 1.0;
    estimate.container = edges.best_parent;
    estimate.container_prob = edges.best_prob;
    estimate.container_runner_up = edges.runner_up_prob;
    estimate.observed = true;
    result.estimates[id] = estimate;
    known_color[id] = node->recent_color;
  }

  // Waves d = 1, 2, ...: uncolored nodes in increasing distance.
  int distance = 0;
  while (!wave.empty()) {
    ++distance;
    if (!complete && distance > params_.partial_hops) break;
    obs::ScopedSpan wave_span("inference", "wave", now);

    // Collect the next wave from the (post-pruning) adjacency of this one.
    std::vector<ObjectId> next;
    for (ObjectId id : wave) {
      const Node* node = graph_->FindNode(id);
      if (node == nullptr) continue;
      auto discover = [&](ObjectId neighbor) {
        if (visited.insert(neighbor).second) next.push_back(neighbor);
      };
      for (EdgeId e : node->parent_edges) discover(graph_->edge(e).parent);
      for (EdgeId e : node->child_edges) discover(graph_->edge(e).child);
    }
    if (next.empty()) break;

    // Edge inference (with pruning) for the whole wave first...
    std::unordered_map<ObjectId, EdgeInferenceResult> edge_results;
    edge_results.reserve(next.size());
    for (ObjectId id : next) {
      Node* node = graph_->FindNode(id);
      if (node == nullptr) continue;
      edge_results[id] = InferEdgesAndPrune(*node, &result);
    }
    // ...then node inference, seeing only colors from earlier waves.
    std::vector<ObjectEstimate> pending;
    pending.reserve(next.size());
    for (ObjectId id : next) {
      Node* node = graph_->FindNode(id);
      if (node == nullptr) continue;
      NodeInferenceResult location =
          node_inferencer_.InferAt(*node, now, color_of);
      ObjectEstimate estimate;
      estimate.object = id;
      estimate.location = location.location;
      estimate.location_prob = location.probability;
      estimate.location_runner_up = location.runner_up;
      estimate.container = edge_results[id].best_parent;
      estimate.container_prob = edge_results[id].best_prob;
      estimate.container_runner_up = edge_results[id].runner_up_prob;
      estimate.observed = false;
      estimate.withheld =
          !complete && location.location == kUnknownLocation;
      pending.push_back(estimate);
    }
    // Commit the wave: later waves may now use these colors.
    for (const ObjectEstimate& estimate : pending) {
      result.estimates[estimate.object] = estimate;
      if (estimate.location != kUnknownLocation) {
        known_color[estimate.object] = estimate.location;
      }
    }
    result.waves = static_cast<std::size_t>(distance);
    wave = std::move(next);
  }

  if (complete) {
    // Nodes unreachable from any colored node ("d = infinity"): no color can
    // propagate to them; infer from their fading colors alone.
    std::vector<ObjectId> rest;
    for (const auto& [id, node] : graph_->nodes()) {
      if (!visited.contains(id)) rest.push_back(id);
    }
    std::sort(rest.begin(), rest.end());
    for (ObjectId id : rest) {
      Node* node = graph_->FindNode(id);
      if (node == nullptr) continue;
      EdgeInferenceResult edges = InferEdgesAndPrune(*node, &result);
      NodeInferenceResult location =
          node_inferencer_.InferAt(*node, now, color_of);
      ObjectEstimate estimate;
      estimate.object = id;
      estimate.location = location.location;
      estimate.location_prob = location.probability;
      estimate.location_runner_up = location.runner_up;
      estimate.container = edges.best_parent;
      estimate.container_prob = edges.best_prob;
      estimate.container_runner_up = edges.runner_up_prob;
      estimate.observed = false;
      result.estimates[id] = estimate;
    }
  }
  if (const Instruments* instruments = GetInstruments()) {
    (complete ? instruments->passes_complete : instruments->passes_partial)
        ->Add(1);
    instruments->waves->Add(result.waves);
    instruments->edges_pruned->Add(result.edges_pruned);
    instruments->estimates->Add(result.estimates.size());
  }
  return result;
}

}  // namespace spire
