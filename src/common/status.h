// Minimal Status / Result error-handling vocabulary (RocksDB/Arrow idiom).
// SPIRE's public APIs do not throw; fallible operations return Status or
// Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace spire {

/// Error category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kInternal = 7,
};

/// Outcome of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kCorruption:
        return "Corruption";
      case StatusCode::kNotSupported:
        return "NotSupported";
      case StatusCode::kInternal:
        return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string msg_;
};

/// A value or an error. Like arrow::Result: access value() only after
/// checking ok().
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status (failure). Asserts the status is not OK.
  Result(Status status) : status_(std::move(status)) { assert(!status_.ok()); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; valid only when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The contained value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define SPIRE_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::spire::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace spire
