#include "eval/event_accuracy.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

namespace spire {

namespace {

/// Key identifying "the same fact" in both streams: type + object + target.
using FactKey = std::tuple<EventType, ObjectId, LocationId, ObjectId>;

FactKey KeyOf(const RangedEvent& event) {
  return {event.type, event.object, event.location, event.container};
}

bool InClass(const RangedEvent& event, EventClass event_class) {
  switch (event_class) {
    case EventClass::kAll:
      return true;
    case EventClass::kLocationOnly:
      return event.type == EventType::kStartLocation ||
             event.type == EventType::kMissing;
    case EventClass::kContainmentOnly:
      return event.type == EventType::kStartContainment;
  }
  return false;
}

/// A truth interval during which an object resides at no known location
/// (between two stays, or after a theft).
struct AbsenceInterval {
  Epoch lo = kNeverEpoch;
  Epoch hi = kInfiniteEpoch;
  bool used = false;
};

}  // namespace

EventStream StripLocationEvents(const EventStream& stream,
                                LocationId location) {
  EventStream kept;
  kept.reserve(stream.size());
  for (const Event& event : stream) {
    const bool is_location_stay = event.type == EventType::kStartLocation ||
                                  event.type == EventType::kEndLocation;
    if (is_location_stay && event.location == location) continue;
    kept.push_back(event);
  }
  return kept;
}

EventAccuracy CompareEventStreams(const EventStream& output,
                                  const EventStream& truth,
                                  EventClass event_class,
                                  Epoch start_tolerance) {
  std::vector<RangedEvent> folded_output = FoldEvents(output);
  std::vector<RangedEvent> folded_truth = FoldEvents(truth);

  // --- Index the truth ---------------------------------------------------
  // Stays indexed by fact key, starts sorted per key.
  struct Candidates {
    std::vector<Epoch> starts;
    std::vector<bool> used;
  };
  std::map<FactKey, Candidates> stay_index;
  // Per-object location stays (to derive absence gaps) and Missing epochs.
  std::map<ObjectId, std::vector<RangedEvent>> location_stays;
  std::map<ObjectId, std::vector<Epoch>> truth_missing;
  EventAccuracy accuracy;
  for (const RangedEvent& event : folded_truth) {
    if (event.type == EventType::kStartLocation) {
      location_stays[event.object].push_back(event);
    }
    if (event.type == EventType::kMissing) {
      truth_missing[event.object].push_back(event.start);
    }
    if (!InClass(event, event_class)) continue;
    ++accuracy.truth_events;
    if (event.type != EventType::kMissing) {
      stay_index[KeyOf(event)].starts.push_back(event.start);
    }
  }
  for (auto& [key, candidates] : stay_index) {
    candidates.used.assign(candidates.starts.size(), false);
  }

  // An output Missing is correct when the object truly resided at no known
  // location: between two stays, or forever after a theft. FoldEvents sorts
  // per object by start, so gaps fall out of adjacent stays.
  std::map<ObjectId, std::vector<AbsenceInterval>> absences;
  for (auto& [object, stays] : location_stays) {
    auto& gaps = absences[object];
    for (std::size_t i = 0; i + 1 < stays.size(); ++i) {
      if (stays[i].end != kInfiniteEpoch &&
          stays[i + 1].start > stays[i].end) {
        gaps.push_back({stays[i].end, stays[i + 1].start, false});
      }
    }
    if (truth_missing.contains(object) && !stays.empty() &&
        stays.back().end != kInfiniteEpoch) {
      gaps.push_back({stays.back().end, kInfiniteEpoch, false});
    }
  }

  // --- Match the output --------------------------------------------------
  std::map<ObjectId, std::vector<Epoch>> output_missing;
  for (const RangedEvent& event : folded_output) {
    if (event.type == EventType::kMissing) {
      output_missing[event.object].push_back(event.start);
    }
    if (!InClass(event, event_class)) continue;
    ++accuracy.output_events;
    if (event.type == EventType::kMissing) {
      auto it = absences.find(event.object);
      if (it == absences.end()) continue;
      for (AbsenceInterval& gap : it->second) {
        if (gap.used) continue;
        if (event.start + start_tolerance >= gap.lo &&
            (gap.hi == kInfiniteEpoch ||
             event.start <= gap.hi + start_tolerance)) {
          gap.used = true;
          ++accuracy.matched_output;
          break;
        }
      }
      continue;
    }
    // Stays: claim the earliest unused truth stay of the same fact whose
    // start is within the tolerance.
    auto it = stay_index.find(KeyOf(event));
    if (it == stay_index.end()) continue;
    Candidates& candidates = it->second;
    auto lo = std::lower_bound(candidates.starts.begin(),
                               candidates.starts.end(),
                               event.start - start_tolerance);
    for (auto pos = lo; pos != candidates.starts.end() &&
                        *pos <= event.start + start_tolerance;
         ++pos) {
      std::size_t index =
          static_cast<std::size_t>(pos - candidates.starts.begin());
      if (candidates.used[index]) continue;
      candidates.used[index] = true;
      ++accuracy.matched_output;
      ++accuracy.matched_truth;
      break;
    }
  }

  // --- Recall side for truth Missing (thefts) ----------------------------
  // A theft counts as recalled when the output ever reports the object
  // missing at or after the theft; the matched count above only covered the
  // output side, so add the truth-side hits here without double counting
  // (Missing matched above consumed absence gaps, not truth Missing events).
  if (event_class != EventClass::kContainmentOnly) {
    for (const auto& [object, epochs] : truth_missing) {
      auto it = output_missing.find(object);
      if (it == output_missing.end()) continue;
      for (Epoch theft : epochs) {
        auto found = std::lower_bound(it->second.begin(), it->second.end(),
                                      theft - start_tolerance);
        if (found != it->second.end()) {
          // The theft was detected: the truth Missing is recalled (the
          // output side was already credited via the absence gap).
          ++accuracy.matched_truth;
        }
      }
    }
  }
  return accuracy;
}

}  // namespace spire
