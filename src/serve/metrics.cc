#include "serve/metrics.h"

#include <algorithm>
#include <sstream>

namespace spire::serve {

std::string QueueMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"depth_highwater\":" << depth_highwater.value()
      << ",\"blocked_pushes\":" << blocked_pushes.value()
      << ",\"blocked_pops\":" << blocked_pops.value()
      << ",\"dropped\":" << dropped.value() << "}";
  return out.str();
}

double ShardMetrics::EpochsPerBusySecond() const {
  const std::uint64_t us = busy_us.value();
  if (us == 0) return 0.0;
  return static_cast<double>(epochs.value()) / (static_cast<double>(us) / 1e6);
}

Metrics::Metrics(int num_shards) {
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardMetrics>());
  }
}

std::string Metrics::ToJson(double wall_seconds, int num_sites) const {
  std::uint64_t epochs = 0, events = 0, readings = 0;
  for (const auto& shard : shards_) {
    epochs = std::max(epochs, shard->epochs.value());
    events += shard->events.value();
    readings += shard->readings.value();
  }
  std::ostringstream out;
  out << "{\"num_shards\":" << shards_.size() << ",\"num_sites\":" << num_sites
      << ",\"wall_seconds\":" << wall_seconds << ",\"epochs\":" << epochs
      << ",\"events\":" << events << ",\"readings\":" << readings
      << ",\"epochs_per_sec\":"
      << (wall_seconds > 0.0 ? static_cast<double>(epochs) / wall_seconds
                             : 0.0)
      << ",\"shards\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardMetrics& shard = *shards_[i];
    if (i > 0) out << ",";
    out << "{\"shard\":" << i << ",\"epochs\":" << shard.epochs.value()
        << ",\"events\":" << shard.events.value()
        << ",\"readings\":" << shard.readings.value() << ",\"busy_seconds\":"
        << static_cast<double>(shard.busy_us.value()) / 1e6
        << ",\"epochs_per_busy_sec\":" << shard.EpochsPerBusySecond()
        << ",\"update_seconds\":"
        << static_cast<double>(shard.update_us.value()) / 1e6
        << ",\"inference_seconds\":"
        << static_cast<double>(shard.inference_us.value()) / 1e6
        << ",\"process_latency\":" << shard.process_latency.ToJson("_us")
        << ",\"input_queue\":" << shard.input_queue.ToJson()
        << ",\"output_queue\":" << shard.output_queue.ToJson() << "}";
  }
  out << "],\"merger\":{\"epochs\":" << merger_.epochs_merged.value()
      << ",\"events\":" << merger_.events_out.value() << ",\"wait_seconds\":"
      << static_cast<double>(merger_.wait_us.value()) / 1e6 << "}}";
  return out.str();
}

}  // namespace spire::serve
