// SMURF baseline: adaptive per-tag RFID smoothing (Jeffery, Garofalakis,
// Franklin — VLDB 2006), the comparison system of Section VI-D.
//
// SMURF models each tag's readings as a random sample of its presence: in a
// window of w epochs, a present tag is observed ~Binomial(w, p) times, where
// p is the tag's per-epoch read probability. Per tag it keeps an adaptive
// window sized toward the completeness requirement w* = ln(1/delta)/p (the
// smallest window in which a present tag is observed at least once with
// probability >= 1 - delta), detects transitions with a binomial CLT test
// (observed count below the expectation by more than two standard
// deviations), halving the window on a suspected transition and growing it
// additively otherwise. A tag is reported present while it has been
// observed within its current window, at the location of the reader that
// read it most recently (the paper's extension for static readers).
//
// SMURF performs no containment inference; its estimates never carry a
// container.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/types.h"
#include "compress/compressor.h"
#include "stream/reader.h"
#include "stream/reading.h"

namespace spire {

/// SMURF tuning knobs.
struct SmurfOptions {
  /// Completeness slack: w* guarantees a read within the window with
  /// probability >= 1 - delta.
  double delta = 0.05;
  /// Window clamp (epochs). Slow shelf readers push w* far beyond what the
  /// original (every-epoch-interrogation) algorithm anticipated; the cap
  /// bounds state and reaction time.
  int max_window = 256;
  int min_window = 1;
  /// Tag state is dropped after this many epochs without a reading.
  Epoch forget_after = 2048;
  /// Measure windows in reading *opportunities* (epochs / the period of the
  /// tag's current reader) instead of raw epochs. Vanilla SMURF assumes an
  /// interrogation every epoch; this static-reader extension keeps its
  /// statistics meaningful under slow shelf readers.
  bool frequency_aware = true;
};

/// Per-tag adaptive smoothing. Feed one (deduplicated) epoch at a time.
class SmurfCleaner {
 public:
  SmurfCleaner(const ReaderRegistry* registry, SmurfOptions options = {})
      : registry_(registry), options_(options) {}

  /// Consumes one epoch of readings and returns the smoothed state of every
  /// tracked tag: its smoothed location, or kUnknownLocation once the tag
  /// has not been observed within its window. Estimates are in ascending
  /// tag order.
  std::vector<ObjectStateEstimate> ProcessEpoch(Epoch now,
                                                const EpochReadings& readings);

  /// The current adaptive window of a tag (testing hook); 0 if untracked.
  int WindowOf(ObjectId tag) const;

  std::size_t tracked_tags() const { return tags_.size(); }

 private:
  struct TagState {
    std::deque<Epoch> observations;  ///< Epochs with >= 1 reading, ascending.
    int window = 1;                  ///< In reading opportunities.
    LocationId location = kUnknownLocation;
    Epoch period = 1;                ///< Reading period at `location`.
    Epoch first_seen = kNeverEpoch;
    Epoch last_seen = kNeverEpoch;
    Epoch last_adapt = kNeverEpoch;
  };

  void Adapt(TagState& tag, Epoch now);
  Epoch PeriodAt(LocationId location) const;

  const ReaderRegistry* registry_;
  SmurfOptions options_;
  std::map<ObjectId, TagState> tags_;
  std::vector<Epoch> location_periods_;
};

}  // namespace spire
