// Expt 9 (beyond the paper): the persistent block-compressed archive
// (src/store) versus the flat 26-byte SPEV record file.
//
// Reports, for a level-2 warehouse trace:
//   - bytes per event and size relative to the flat encoding (target: the
//     archive at most half the flat file);
//   - write and full-scan throughput for both formats;
//   - a 10%-of-epochs time-range scan: blocks decoded versus total blocks
//     (the block directory must skip a proportional share) and the scan's
//     event yield.
//
//   ./expt9_archive [full=true] [block_events=N] [key=value ...]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "compress/serde.h"
#include "eval/table.h"
#include "sim/simulator.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"
#include "common/wire.h"

using namespace spire;
using namespace spire::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Runs the pipeline over the trace and returns its output stream.
EventStream GenerateTrace(const SimConfig& config) {
  auto sim = WarehouseSimulator::Create(config);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream events;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &events);
  }
  pipeline.Finish(s.current_epoch() + 1, &events);
  return events;
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = PaperOutputConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();
  ArchiveOptions archive_options;
  archive_options.block_events = static_cast<std::size_t>(
      args.GetInt("block_events", 4096).value_or(4096));

  PrintHeader("Expt 9: persistent archive vs flat event file",
              "beyond the paper; store/ subsystem");

  const EventStream events = GenerateTrace(base);
  const double n = static_cast<double>(events.size());
  std::printf("trace: %zu events over %lld epochs\n\n", events.size(),
              static_cast<long long>(base.duration_epochs));

  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string flat_path = dir + "/expt9_flat.spev";
  const std::string archive_path = dir + "/expt9_archive.sparc";
  std::error_code ec;
  std::filesystem::remove(flat_path, ec);
  std::filesystem::remove(archive_path, ec);
  std::filesystem::remove(IndexPathFor(archive_path), ec);

  // --- Flat SPEV file -------------------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  Check(WriteEventFile(flat_path, events), "flat write");
  const double flat_write_s = Seconds(t0);
  const auto flat_bytes = std::filesystem::file_size(flat_path);

  t0 = std::chrono::steady_clock::now();
  auto flat_read = ReadEventFile(flat_path);
  Check(flat_read.status(), "flat read");
  const double flat_read_s = Seconds(t0);
  if (flat_read.value() != events) {
    std::fprintf(stderr, "flat round trip mismatch\n");
    return 1;
  }

  // --- Block-compressed archive --------------------------------------------
  t0 = std::chrono::steady_clock::now();
  auto writer = ArchiveWriter::Open(archive_path, archive_options);
  Check(writer.status(), "archive open");
  Check(writer.value()->Append(events), "archive append");
  Check(writer.value()->Close(), "archive close");
  const double archive_write_s = Seconds(t0);
  const std::uint64_t archive_bytes = writer.value()->segment_bytes();

  auto reader = ArchiveReader::Open(archive_path);
  Check(reader.status(), "archive reader open");
  t0 = std::chrono::steady_clock::now();
  auto scanned = reader.value().ScanAll();
  Check(scanned.status(), "archive scan");
  const double archive_scan_s = Seconds(t0);
  if (scanned.value() != events) {
    std::fprintf(stderr, "archive round trip mismatch\n");
    return 1;
  }

  TextTable table({"format", "bytes", "bytes/event", "vs flat", "write Mev/s",
                   "scan Mev/s"});
  table.AddRow({"flat SPEV", std::to_string(flat_bytes),
                TextTable::Num(static_cast<double>(flat_bytes) / n, 2), "1.00",
                TextTable::Num(n / flat_write_s / 1e6, 2),
                TextTable::Num(n / flat_read_s / 1e6, 2)});
  table.AddRow({"archive", std::to_string(archive_bytes),
                TextTable::Num(static_cast<double>(archive_bytes) / n, 2),
                TextTable::Num(static_cast<double>(archive_bytes) /
                                   static_cast<double>(flat_bytes),
                               2),
                TextTable::Num(n / archive_write_s / 1e6, 2),
                TextTable::Num(n / archive_scan_s / 1e6, 2)});
  table.Print();
  std::printf("archive: %zu blocks of <= %zu events; payload record = %zu "
              "flat bytes\n\n",
              reader.value().num_blocks(), archive_options.block_events,
              kEventWireBytes);

  // --- 10%-of-epochs range scan --------------------------------------------
  Epoch lo_epoch = kInfiniteEpoch, hi_epoch = 0;
  for (const Event& event : events) {
    const Epoch primary = PrimaryEpoch(event);
    if (primary < lo_epoch) lo_epoch = primary;
    if (primary > hi_epoch) hi_epoch = primary;
  }
  const Epoch span = hi_epoch - lo_epoch;
  const Epoch lo = lo_epoch + span * 45 / 100;
  const Epoch hi = lo_epoch + span * 55 / 100;
  const std::size_t touched = reader.value().BlocksInRange(lo, hi);
  t0 = std::chrono::steady_clock::now();
  auto ranged = reader.value().ScanRange(lo, hi);
  Check(ranged.status(), "range scan");
  const double range_s = Seconds(t0);
  std::printf("range scan [%lld, %lld] (10%% of %lld epochs):\n",
              static_cast<long long>(lo), static_cast<long long>(hi),
              static_cast<long long>(span));
  std::printf("  blocks decoded: %zu of %zu (%.1f%%), events: %zu "
              "(%.1f%% of stream), %.2f ms\n",
              touched, reader.value().num_blocks(),
              100.0 * static_cast<double>(touched) /
                  static_cast<double>(reader.value().num_blocks()),
              ranged.value().size(), 100.0 * ranged.value().size() / n,
              range_s * 1e3);

  std::filesystem::remove(flat_path, ec);
  std::filesystem::remove(archive_path, ec);
  std::filesystem::remove(IndexPathFor(archive_path), ec);
  return 0;
}
