#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace spire::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

int Histogram::BucketOf(std::uint64_t value) {
  if (value < 1) value = 1;
  const int bit = std::bit_width(value) - 1;  // floor(log2(value)).
  return std::min(bit, kBuckets - 1);
}

void Histogram::Record(std::uint64_t value) {
  if (value < 1) value = 1;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::RecordSeconds(double seconds) {
  Record(seconds <= 0.0
             ? 1
             : std::max<std::uint64_t>(
                   1, static_cast<std::uint64_t>(seconds * 1e6)));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double Histogram::QuantileOverBuckets(const std::uint64_t buckets[kBuckets],
                                      std::uint64_t count, double max_value,
                                      double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      // Linear interpolation by rank position inside the bucket: the k-th
      // of c samples reports lower + k/c * width, so a full bucket tops out
      // exactly at its upper bound (the pre-interpolation behavior).
      const double position = static_cast<double>(target - cumulative) /
                              static_cast<double>(in_bucket);
      const auto lower = static_cast<double>(BucketLowerBound(i));
      const auto upper = static_cast<double>(BucketUpperBound(i));
      return lower + position * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return max_value;
}

double Histogram::Quantile(double q) const {
  std::uint64_t buckets[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return QuantileOverBuckets(buckets, count(), max(), q);
}

namespace {

std::string HistogramJson(std::uint64_t count, double mean, double p50,
                          double p95, double p99, double max,
                          const std::string& unit) {
  std::ostringstream out;
  out << "{\"count\":" << count << ",\"mean" << unit << "\":" << mean
      << ",\"p50" << unit << "\":" << p50 << ",\"p95" << unit << "\":" << p95
      << ",\"p99" << unit << "\":" << p99 << ",\"max" << unit << "\":" << max
      << "}";
  return out.str();
}

}  // namespace

std::string Histogram::ToJson(const std::string& unit) const {
  return HistogramJson(count(), mean(), Quantile(0.50), Quantile(0.95),
                       Quantile(0.99), max(), unit);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < Histogram::kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  total += other.total;
  max = std::max(max, other.max);
}

double HistogramSnapshot::mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  return Histogram::QuantileOverBuckets(buckets, count,
                                        static_cast<double>(max), q);
}

std::string HistogramSnapshot::ToJson(const std::string& unit) const {
  return HistogramJson(count, mean(), Quantile(0.50), Quantile(0.95),
                       Quantile(0.99), static_cast<double>(max), unit);
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const auto& [module_name, module] : other.modules) {
    Module& mine = modules[module_name];
    for (const auto& [name, value] : module.counters) {
      mine.counters[name] += value;
    }
    for (const auto& [name, value] : module.gauges) {
      auto [it, inserted] = mine.gauges.emplace(name, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
    for (const auto& [name, histogram] : module.histograms) {
      mine.histograms[name].Merge(histogram);
    }
  }
}

std::string RegistrySnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"modules\":{";
  bool first_module = true;
  for (const auto& [module_name, module] : modules) {
    if (!first_module) out << ",";
    first_module = false;
    out << "\"" << module_name << "\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : module.counters) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << value;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : module.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << value;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : module.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << histogram.ToJson();
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // Never destroyed: pointers
  return *instance;                            // must outlive all users.
}

Counter* Registry::GetCounter(const std::string& module,
                              const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &modules_[module].counters[name];
}

Gauge* Registry::GetGauge(const std::string& module, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &modules_[module].gauges[name];
}

Histogram* Registry::GetHistogram(const std::string& module,
                                  const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return &modules_[module].histograms[name];
}

RegistrySnapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [module_name, module] : modules_) {
    RegistrySnapshot::Module& out = snapshot.modules[module_name];
    for (const auto& [name, counter] : module.counters) {
      out.counters[name] = counter.value();
    }
    for (const auto& [name, gauge] : module.gauges) {
      out.gauges[name] = gauge.value();
    }
    for (const auto& [name, histogram] : module.histograms) {
      HistogramSnapshot& h = out.histograms[name];
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        h.buckets[i] = histogram.bucket(i);
      }
      h.count = histogram.count();
      h.total = histogram.total();
      h.max = histogram.max_sample();
    }
  }
  return snapshot;
}

bool Registry::ModuleActive(const Module& module) const {
  for (const auto& [name, counter] : module.counters) {
    if (counter.value() != 0) return true;
  }
  for (const auto& [name, gauge] : module.gauges) {
    if (gauge.value() != 0) return true;
  }
  for (const auto& [name, histogram] : module.histograms) {
    if (histogram.count() != 0) return true;
  }
  return false;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"modules\":{";
  bool first_module = true;
  for (const auto& [module_name, module] : modules_) {
    if (!first_module) out << ",";
    first_module = false;
    out << "\"" << module_name << "\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : module.counters) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << counter.value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : module.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << gauge.value();
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : module.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << histogram.ToJson();
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

std::string Registry::ToText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::size_t active = 0;
  std::string active_names;
  for (const auto& [module_name, module] : modules_) {
    if (!ModuleActive(module)) continue;
    ++active;
    if (!active_names.empty()) active_names += " ";
    active_names += module_name;
  }
  out << "modules with activity: " << active << " (" << active_names << ")\n";
  for (const auto& [module_name, module] : modules_) {
    for (const auto& [name, counter] : module.counters) {
      out << module_name << "." << name << " " << counter.value() << "\n";
    }
    for (const auto& [name, gauge] : module.gauges) {
      out << module_name << "." << name << " " << gauge.value() << "\n";
    }
    for (const auto& [name, histogram] : module.histograms) {
      out << module_name << "." << name << " count=" << histogram.count()
          << " mean_us=" << histogram.mean()
          << " p50_us=" << histogram.Quantile(0.50)
          << " p95_us=" << histogram.Quantile(0.95)
          << " p99_us=" << histogram.Quantile(0.99)
          << " max_us=" << histogram.max() << "\n";
    }
  }
  return out.str();
}

std::size_t Registry::NumActiveModules() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& [name, module] : modules_) {
    if (ModuleActive(module)) ++active;
  }
  return active;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [module_name, module] : modules_) {
    for (auto& [name, counter] : module.counters) counter.Reset();
    for (auto& [name, gauge] : module.gauges) gauge.Reset();
    for (auto& [name, histogram] : module.histograms) histogram.Reset();
  }
}

}  // namespace spire::obs
